// Metaheuristic shoot-out: runs every registered optimizer (see
// `afp list-baselines`) on a chosen circuit and prints the Table-I-style
// metric row for each.
//
//   $ ./baseline_shootout [circuit] [seeds]
//
// circuit defaults to "driver"; seeds to 3.  Circuits: ota_small, ota1,
// ota2, bias_small, bias1, bias2, rs_latch, driver, comparator,
// level_shifter, ring_osc5.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/pipeline.hpp"
#include "netlist/library.hpp"

int main(int argc, char** argv) {
  using namespace afp;
  const std::string circuit = argc > 1 ? argv[1] : "driver";
  const int seeds = argc > 2 ? std::atoi(argv[2]) : 3;

  netlist::Netlist nl;
  bool found = false;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == circuit) {
      nl = e.make();
      found = true;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown circuit '%s'\n", circuit.c_str());
    return 1;
  }

  std::printf("%-12s on '%s':\n%-12s %12s %14s %12s %10s\n", "method",
              circuit.c_str(), "", "runtime(s)", "dead space(%)", "HPWL(um)",
              "reward");
  // Every registered optimizer competes — new registry entries show up here
  // automatically.
  for (const std::string& name : metaheur::optimizer_names()) {
    core::PipelineConfig cfg;
    cfg.optimizer = name;
    core::FloorplanPipeline pipe(cfg);
    double rt = 0.0, ds = 0.0, hp = 0.0, rw = 0.0;
    for (int s = 0; s < seeds; ++s) {
      std::mt19937_64 rng(static_cast<unsigned>(s) + 1);
      const auto res = pipe.run(nl, rng);
      rt += res.timings.floorplan_s;
      ds += res.eval.dead_space * 100.0;
      hp += res.eval.hpwl;
      rw += res.eval.reward;
    }
    std::printf("%-12s %12.3f %14.2f %12.1f %10.2f\n", name.c_str(),
                rt / seeds, ds / seeds, hp / seeds, rw / seeds);
  }
  return 0;
}
