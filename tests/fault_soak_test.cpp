// Deterministic fault-injection soak: a batch of 100+ jobs with ~20% of
// them hit by injected faults (throws, stalls, allocation failures) at
// quantum boundaries must
//
//   * drive every job to a terminal state (no hangs, no escaped
//     exceptions, no poisoned pool),
//   * leave every NON-faulted job bitwise identical to the same batch run
//     with injection disabled,
//   * produce the same reports at 1 and 4 threads (fault decisions are a
//     pure function of (spec seed, job, quantum, attempt), never of
//     scheduling).
//
// This is the repo's standing chaos test; the CI sanitizer legs run it
// under TSan and ASan/UBSan.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/job_service.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp::core {
namespace {

constexpr std::size_t kJobs = 100;
// Probabilistic injection over jobs x quanta x attempts, plus a few pinned
// sites so every fault kind provably fires at least once.
const char kFaultSpec[] =
    "p=0.2;seed=11;kinds=throw,stall,alloc;stall_ms=5;"
    "throw@0:0;stall@1:1;alloc@2:0";

std::vector<JobSpec> soak_jobs() {
  const std::vector<netlist::Netlist> circuits = {
      netlist::make_ota_small(), netlist::make_bias_small()};
  std::vector<JobSpec> jobs;
  jobs.reserve(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.name = "soak" + std::to_string(i);
    spec.netlist = circuits[i % circuits.size()];
    spec.config.optimizer = "sa";
    spec.config.options = {{"iterations", "40"}};
    // Pin hpwl_ref: skips the per-job HPWLmin estimation SA, which
    // dominates runtime at this scale and is irrelevant to fault handling.
    spec.config.hpwl_ref = 50.0;
    spec.config.search.base_seed = 1000 + i;
    spec.config.search.budget.quanta = 2;
    spec.config.search.budget.deadline_s = 5.0;
    spec.config.search.retry.max_retries = 1;
    spec.config.search.retry.backoff_s = 0.001;
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

bool terminal(JobStatus s) {
  return s == JobStatus::kDone || s == JobStatus::kFailed ||
         s == JobStatus::kCancelled || s == JobStatus::kDeadlineExceeded;
}

void expect_same_report(const JobReport& a, const JobReport& b,
                        const std::string& what) {
  ASSERT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.attempts, b.attempts) << what;
  EXPECT_EQ(a.error.kind, b.error.kind) << what;
  EXPECT_EQ(a.result.evaluations, b.result.evaluations) << what;
  ASSERT_EQ(a.result.rects.size(), b.result.rects.size()) << what;
  for (std::size_t i = 0; i < a.result.rects.size(); ++i) {
    EXPECT_EQ(a.result.rects[i], b.result.rects[i]) << what << " rect " << i;
  }
}

TEST(FaultSoak, HundredJobsUnderTwentyPercentFaults) {
  const auto jobs = soak_jobs();
  JobServiceOptions opts;
  opts.base_seed = 4242;

  FaultInjector::global().configure("");
  num::set_num_threads(1);
  const auto clean = JobService::run_batch(jobs, opts);

  FaultInjector::global().configure(kFaultSpec);
  const auto faulted1 = JobService::run_batch(jobs, opts);
  num::set_num_threads(4);
  const auto faulted4 = JobService::run_batch(jobs, opts);
  FaultInjector::global().configure("");
  num::set_num_threads(0);

  ASSERT_EQ(clean.size(), kJobs);
  ASSERT_EQ(faulted1.size(), kJobs);
  ASSERT_EQ(faulted4.size(), kJobs);

  std::size_t touched = 0;  // jobs that saw at least one injected fault
  std::size_t failed = 0;
  for (std::size_t i = 0; i < kJobs; ++i) {
    const JobReport& f = faulted1[i];
    ASSERT_TRUE(terminal(f.status)) << f.name;
    failed += f.status != JobStatus::kDone;
    // Fault decisions are scheduling-independent: the 4-thread run must
    // reproduce the 1-thread run bitwise, fault or no fault.
    expect_same_report(f, faulted4[i], f.name + " 1-vs-4 threads");
    if (f.status == JobStatus::kDone && f.attempts == 1 && f.error.ok()) {
      // Untouched by injection: must match the fault-free batch bitwise.
      expect_same_report(clean[i], f, f.name + " vs fault-free");
    } else {
      ++touched;
    }
  }
  // p=0.2 over >= 2 quanta per job: a meaningful share of the batch must
  // actually have been hit, and retries must rescue some of those — the
  // soak is vacuous if either count collapses.
  EXPECT_GE(touched, kJobs / 10) << "injection barely fired";
  EXPECT_LT(failed, kJobs) << "every job failed";
  EXPECT_GT(touched - failed, 0u) << "no faulted job was rescued by retry";
}

}  // namespace
}  // namespace afp::core
