#include <gtest/gtest.h>

#include "graphir/graph.hpp"
#include "netlist/library.hpp"

namespace afp::graphir {
namespace {

CircuitGraph graph_of(const netlist::Netlist& nl) {
  return build_graph(nl, structrec::recognize(nl));
}

TEST(BuildGraph, NodeCountMatchesRecognition) {
  for (const auto& entry : netlist::circuit_registry()) {
    const auto nl = entry.make();
    const auto g = graph_of(nl);
    EXPECT_EQ(g.num_nodes(), entry.expected_blocks) << entry.name;
    EXPECT_EQ(g.name, nl.name());
  }
}

TEST(BuildGraph, ConnectivityEdgesFromSharedNets) {
  const auto g = graph_of(netlist::make_ota_small());
  const auto& conn = g.edges[static_cast<std::size_t>(Relation::kConnectivity)];
  // Diff pair connects to both the mirror load and the tail source.
  EXPECT_GE(conn.size(), 2u);
  for (const auto& [u, v] : conn) {
    EXPECT_NE(u, v);
    EXPECT_LT(u, g.num_nodes());
    EXPECT_LT(v, g.num_nodes());
  }
}

TEST(BuildGraph, SupplyNetsIgnored) {
  const auto g = graph_of(netlist::make_ring_oscillator(3));
  // Ring oscillator devices share only VDD/VSS and the stage nets; block
  // nets never mention supplies.
  for (const auto& net : g.nets) {
    EXPECT_NE(net.name, "VDD");
    EXPECT_NE(net.name, "VSS");
    EXPECT_GE(net.blocks.size(), 2u);
  }
}

TEST(FeatureMatrix, ShapeAndOneHots) {
  const auto g = graph_of(netlist::make_ota2());
  const auto f = g.feature_matrix();
  ASSERT_EQ(f.shape(), (num::Shape{g.num_nodes(), kNodeFeatureDim}));
  for (int i = 0; i < g.num_nodes(); ++i) {
    const float* row = f.data() + static_cast<std::size_t>(i) * kNodeFeatureDim;
    // Routing-direction one-hot sums to 1.
    float dir = row[3] + row[4] + row[5] + row[6];
    EXPECT_FLOAT_EQ(dir, 1.0f);
    // Structure one-hot sums to 1.
    float st = 0.0f;
    for (int t = 0; t < structrec::kNumStructureTypes; ++t) st += row[7 + t];
    EXPECT_FLOAT_EQ(st, 1.0f);
    EXPECT_GT(row[0], 0.0f);  // normalized area
    EXPECT_LE(row[0], 1.0f);
  }
}

TEST(FeatureMatrix, AreaFractionsSumToOne) {
  const auto g = graph_of(netlist::make_bias1());
  const auto f = g.feature_matrix();
  float total = 0.0f;
  for (int i = 0; i < g.num_nodes(); ++i) {
    total += f.at(static_cast<std::int64_t>(i) * kNodeFeatureDim);
  }
  EXPECT_NEAR(total, 1.0f, 1e-5f);
}

TEST(Constraints, ApplyMaterializesEdges) {
  auto g = graph_of(netlist::make_ota_small());
  ConstraintSpec spec;
  spec.self_syms.push_back({0, true});
  spec.sym_pairs.push_back({1, 2, true});
  spec.align_groups.push_back({{0, 1, 2}, true});
  apply_constraints(g, spec);
  EXPECT_EQ(g.edges[static_cast<std::size_t>(Relation::kVerticalSymmetry)].size(), 2u);
  EXPECT_EQ(g.edges[static_cast<std::size_t>(Relation::kHorizontalAlign)].size(), 2u);
  EXPECT_TRUE(g.edges[static_cast<std::size_t>(Relation::kHorizontalSymmetry)].empty());

  // Re-applying empties previous constraint edges.
  apply_constraints(g, {});
  EXPECT_TRUE(g.edges[static_cast<std::size_t>(Relation::kVerticalSymmetry)].empty());
  EXPECT_TRUE(g.constraints.empty());
}

TEST(Constraints, ApplyValidatesIndices) {
  auto g = graph_of(netlist::make_ota_small());
  ConstraintSpec bad;
  bad.self_syms.push_back({99, true});
  EXPECT_THROW(apply_constraints(g, bad), std::invalid_argument);
}

TEST(Constraints, DefaultsAnchorMatchedPairs) {
  auto g = graph_of(netlist::make_ota2());
  const auto spec = default_constraints(g);
  // Diff pair + cascode pair are self-symmetric.
  EXPECT_GE(spec.self_syms.size(), 2u);
  for (const auto& ss : spec.self_syms) {
    EXPECT_TRUE(structrec::is_matched_pair(
        g.nodes[static_cast<std::size_t>(ss.block)].type));
  }
}

TEST(Constraints, DefaultAlignGroupsIncludeDiffPair) {
  auto g = graph_of(netlist::make_ota_small());
  const auto spec = default_constraints(g);
  ASSERT_FALSE(spec.align_groups.empty());
  bool has_dp = false;
  for (int b : spec.align_groups[0].blocks) {
    const auto t = g.nodes[static_cast<std::size_t>(b)].type;
    has_dp = has_dp || t == structrec::StructureType::kDiffPairN;
  }
  EXPECT_TRUE(has_dp);
}

TEST(Adjacency, MatchesRelationCount) {
  auto g = graph_of(netlist::make_ota1());
  apply_constraints(g, default_constraints(g));
  const auto adj = g.adjacency();
  ASSERT_EQ(adj.size(), static_cast<std::size_t>(kNumRelations));
  for (const auto& a : adj) {
    EXPECT_EQ(a.shape(), (num::Shape{g.num_nodes(), g.num_nodes()}));
  }
}

TEST(TotalArea, SumsNodes) {
  const auto nl = netlist::make_ota_small();
  const auto g = graph_of(nl);
  EXPECT_NEAR(g.total_area(), nl.total_device_area(), 1e-9);
}

}  // namespace
}  // namespace afp::graphir
