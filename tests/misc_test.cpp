// Remaining small-surface contracts: curriculum HPWL caching, sampling
// statistics of the masked categorical, empty-checkpoint round trip, and
// assorted degenerate inputs.
#include <gtest/gtest.h>

#include <filesystem>

#include "netlist/library.hpp"
#include "nn/distribution.hpp"
#include "numeric/serialize.hpp"
#include "floorplan/grid.hpp"
#include "rl/curriculum.hpp"

namespace afp {
namespace {

TEST(Curriculum, HpwlReferenceIsCachedPerCircuit) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::HclConfig cfg;
  cfg.circuits = {"ota_small"};
  cfg.episodes_per_circuit = 100;
  rl::HclScheduler sched(cfg, encoder, rng);
  const auto t1 = sched.build_task("ota_small", false, rng);
  const auto t2 = sched.build_task("ota_small", false, rng);
  // Same cached reference both times despite the advancing RNG.
  EXPECT_DOUBLE_EQ(t1.instance.hpwl_ref, t2.instance.hpwl_ref);
  EXPECT_GT(t1.instance.hpwl_ref, 0.0);
}

TEST(Curriculum, ConstrainedTaskHasConstraintEdges) {
  std::mt19937_64 rng(2);
  rgcn::RewardModel encoder(rng);
  rl::HclConfig cfg;
  rl::HclScheduler sched(cfg, encoder, rng);
  const auto free_task = sched.build_task("ota2", false, rng);
  const auto con_task = sched.build_task("ota2", true, rng);
  EXPECT_TRUE(free_task.instance.constraints.empty());
  EXPECT_FALSE(con_task.instance.constraints.empty());
  // Node embeddings differ because the constraint relations feed the
  // R-GCN message passing.
  bool differs = false;
  for (std::size_t i = 0; i < free_task.node_emb.size(); ++i) {
    differs = differs ||
              std::abs(free_task.node_emb[i] - con_task.node_emb[i]) > 1e-7f;
  }
  EXPECT_TRUE(differs);
}

TEST(MaskedCategorical, SamplingMatchesProbabilities) {
  // Logits giving p = (0.8..., 0.2...) over two valid actions: a few
  // thousand samples should land near the analytic frequencies.
  std::mt19937_64 rng(3);
  const float a = std::log(0.8f);
  const float b = std::log(0.2f);
  num::Tensor logits = num::Tensor::from_vector({1, 3}, {a, b, 5.0f});
  nn::MaskedCategorical dist(logits, {1, 1, 0});  // third action invalid
  int count0 = 0;
  const int trials = 4000;
  for (int k = 0; k < trials; ++k) {
    const auto s = dist.sample(rng);
    ASSERT_NE(s[0], 2);
    count0 += s[0] == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(count0) / trials, 0.8, 0.03);
}

TEST(Serialize, EmptyTensorMap) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "afp_empty_ckpt.bin").string();
  num::save_tensors(path, {});
  const auto loaded = num::load_tensors(path);
  EXPECT_TRUE(loaded.empty());
  std::filesystem::remove(path);
}

TEST(Netlist, EmptyNetlistDegenerates) {
  netlist::Netlist nl("empty");
  EXPECT_EQ(nl.num_devices(), 0);
  EXPECT_TRUE(nl.nets().empty());
  EXPECT_DOUBLE_EQ(nl.total_device_area(), 0.0);
  const auto rec = structrec::recognize(nl);
  EXPECT_TRUE(rec.structures.empty());
  const auto g = graphir::build_graph(nl, rec);
  EXPECT_EQ(g.num_nodes(), 0);
}

TEST(Instance, SingleBlockFloorplan) {
  netlist::Netlist nl("one");
  nl.add_device({"m", netlist::DeviceType::kNmos, {"d", "g", "s", "VSS"},
                 4.0, 0.18, 1});
  const auto rec = structrec::recognize(nl);
  const auto g = graphir::build_graph(nl, rec);
  const auto inst = floorplan::make_instance(g);
  ASSERT_EQ(inst.num_blocks(), 1);
  floorplan::GridFloorplan fp(inst, 32);
  EXPECT_TRUE(fp.any_valid_action(0));
  fp.place(0, 1, 0, 0);
  EXPECT_TRUE(fp.complete());
  const auto ev = floorplan::evaluate_floorplan(inst, fp.rects());
  EXPECT_NEAR(ev.dead_space, 0.0, 1e-9);
}

TEST(FeatureDim, MatchesDocumentedLayout) {
  // 3 scalars + 4 routing-direction one-hot + 28 structure one-hot.
  EXPECT_EQ(graphir::kNodeFeatureDim, 35);
  EXPECT_EQ(structrec::kNumStructureTypes, 28);
}

TEST(Registry, TrainingCircuitsMatchPaperSchedule) {
  // Section IV-D5: 3 OTAs (3/5/8 blocks) and 2 bias circuits (3/9 blocks).
  std::vector<int> training_sizes;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.in_training_set) training_sizes.push_back(e.expected_blocks);
  }
  std::sort(training_sizes.begin(), training_sizes.end());
  EXPECT_EQ(training_sizes, (std::vector<int>{3, 3, 5, 8, 9}));
}

}  // namespace
}  // namespace afp
