#include <gtest/gtest.h>

#include "graphir/graph.hpp"
#include "ingest/scenario.hpp"
#include "netlist/library.hpp"
#include "route/oarsmt.hpp"
#include "structrec/structrec.hpp"

namespace afp::route {
namespace {

bool is_rectilinear(const SteinerTree& t) {
  for (const auto& [a, b] : t.edges) {
    const auto pa = t.nodes[static_cast<std::size_t>(a)];
    const auto pb = t.nodes[static_cast<std::size_t>(b)];
    if (std::abs(pa.x - pb.x) > 1e-9 && std::abs(pa.y - pb.y) > 1e-9) {
      return false;
    }
  }
  return true;
}

bool tree_connected(const SteinerTree& t) {
  if (t.nodes.empty()) return true;
  std::vector<std::vector<int>> adj(t.nodes.size());
  for (const auto& [a, b] : t.edges) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  }
  std::vector<bool> seen(t.nodes.size(), false);
  std::vector<int> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int u : adj[static_cast<std::size_t>(v)]) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = true;
        stack.push_back(u);
      }
    }
  }
  for (bool s : seen) {
    if (!s) return false;
  }
  return true;
}

bool segment_crosses(const geom::Point& a, const geom::Point& b,
                     const geom::Rect& obstacle) {
  // Sample the open segment; obstacles are axis-aligned so a fine sampling
  // suffices for the test.
  for (int k = 1; k < 50; ++k) {
    const double t = k / 50.0;
    const geom::Point p{a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
    if (obstacle.inflated(-1e-6).contains(p)) return true;
  }
  return false;
}

TEST(RouteNet, TwoTerminalStraightLine) {
  const std::vector<geom::Point> pins{{0, 0}, {10, 0}};
  const auto tree = route_net(pins, {});
  EXPECT_TRUE(tree_connected(tree));
  EXPECT_NEAR(tree.length(), 10.0, 1e-9);
}

TEST(RouteNet, LShapeWithoutObstacles) {
  const std::vector<geom::Point> pins{{0, 0}, {5, 7}};
  const auto tree = route_net(pins, {});
  EXPECT_NEAR(tree.length(), 12.0, 1e-9);  // Manhattan distance
  EXPECT_TRUE(is_rectilinear(tree));
}

TEST(RouteNet, DetoursAroundObstacle) {
  const std::vector<geom::Point> pins{{0, 5}, {10, 5}};
  const std::vector<geom::Rect> obstacles{{4, 0, 2, 12}};  // wall
  const auto tree = route_net(pins, obstacles);
  EXPECT_TRUE(tree_connected(tree));
  EXPECT_GT(tree.length(), 10.0);  // must detour
  for (const auto& [a, b] : tree.edges) {
    EXPECT_FALSE(segment_crosses(tree.nodes[static_cast<std::size_t>(a)],
                                 tree.nodes[static_cast<std::size_t>(b)],
                                 obstacles[0]));
  }
}

TEST(RouteNet, MultiTerminalSteinerSavesLength) {
  // Three collinear-ish pins: Steiner tree should share the trunk.
  const std::vector<geom::Point> pins{{0, 0}, {10, 0}, {5, 5}};
  const auto tree = route_net(pins, {});
  EXPECT_TRUE(tree_connected(tree));
  // Star from centroid would cost 15; tree shares the x-axis trunk: 10+5.
  EXPECT_LE(tree.length(), 15.0 + 1e-9);
}

TEST(RouteNet, SingleTerminalIsEmptyTree) {
  const std::vector<geom::Point> pins{{3, 3}};
  const auto tree = route_net(pins, {});
  EXPECT_TRUE(tree.empty());
}

TEST(RouteNet, UnreachableThrows) {
  const std::vector<geom::Point> pins{{0, 0}, {10, 0}};
  // Box the first pin in completely: four overlapping walls form a closed
  // ring around the origin.
  const std::vector<geom::Rect> obstacles{
      {-2, -2, 4, 0.5},   // bottom
      {-2, 1.5, 4, 0.5},  // top
      {-2, -2, 0.5, 4},   // left
      {1.5, -2, 0.5, 4},  // right
  };
  EXPECT_THROW(route_net(pins, obstacles, 0.01), std::runtime_error);
}

TEST(ToConduits, SplitsByOrientationAndMerges) {
  SteinerTree t;
  t.nodes = {{0, 0}, {5, 0}, {10, 0}, {10, 4}};
  t.edges = {{0, 1}, {1, 2}, {2, 3}};
  const auto cs = to_conduits(t, "n1");
  // Two horizontal edges merge into one conduit; one vertical remains.
  int hcount = 0, vcount = 0;
  for (const auto& c : cs) {
    if (c.layer == 1) {
      ++hcount;
      EXPECT_NEAR(c.a.x, 0.0, 1e-12);
      EXPECT_NEAR(c.b.x, 10.0, 1e-12);
    } else {
      ++vcount;
    }
    EXPECT_EQ(c.net, "n1");
  }
  EXPECT_EQ(hcount, 1);
  EXPECT_EQ(vcount, 1);
}

TEST(BlockPin, EdgesByDirection) {
  const geom::Rect r{0, 0, 4, 2};
  EXPECT_EQ(block_pin(r, 0), (geom::Point{2, 2}));  // N
  EXPECT_EQ(block_pin(r, 1), (geom::Point{4, 1}));  // E
  EXPECT_EQ(block_pin(r, 2), (geom::Point{2, 0}));  // S
  EXPECT_EQ(block_pin(r, 3), (geom::Point{0, 1}));  // W
  EXPECT_EQ(block_pin(r, 0, 0.5), (geom::Point{2, 2.5}));
}

TEST(GlobalRoute, RoutesEveryNetOfPlacedCircuit) {
  // Place ota2 blocks on a simple row and route.
  netlist::Netlist nl = netlist::make_ota2();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  std::vector<geom::Rect> rects;
  double x = 0.0;
  for (const auto& b : inst.blocks) {
    rects.push_back({x, 0.0, b.shapes[1].w, b.shapes[1].h});
    x += b.shapes[1].w + 1.0;
  }
  const auto gr = global_route(inst, rects);
  EXPECT_EQ(gr.failed_nets, 0);
  EXPECT_EQ(gr.trees.size(), inst.nets.size());
  EXPECT_GT(gr.total_wirelength, 0.0);
  EXPECT_FALSE(gr.conduits.empty());
  for (const auto& t : gr.trees) {
    EXPECT_TRUE(tree_connected(t));
    EXPECT_TRUE(is_rectilinear(t));
  }
}

TEST(GlobalRoute, WindowedLargeInstanceRoutesCleanly) {
  // Above 64 blocks the router clips each net's escape graph to a window
  // around its pins; the routed trees must still be connected, rectilinear
  // and cover every multi-pin net of a generated 100-block workload.
  const auto sc = ingest::make_scenario(ingest::ScenarioSpec::parse("ota:100:3"));
  auto g = graphir::build_graph(sc.netlist, structrec::recognize(sc.netlist));
  auto inst = floorplan::make_instance(g);
  ASSERT_GT(inst.num_blocks(), 64);
  std::vector<geom::Rect> rects;
  double x = 0.0, y = 0.0, row_h = 0.0;
  int col = 0;
  for (const auto& b : inst.blocks) {
    // 10-wide grid of blocks so windows genuinely exclude far obstacles.
    rects.push_back({x, y, b.shapes[1].w, b.shapes[1].h});
    x += b.shapes[1].w + 1.0;
    row_h = std::max(row_h, b.shapes[1].h);
    if (++col == 10) {
      col = 0;
      x = 0.0;
      y += row_h + 1.0;
      row_h = 0.0;
    }
  }
  const auto gr = global_route(inst, rects);
  EXPECT_EQ(gr.failed_nets, 0);
  EXPECT_GT(gr.total_wirelength, 0.0);
  std::size_t multipin = 0;
  for (const auto& net : inst.nets) multipin += net.size() >= 2 ? 1 : 0;
  EXPECT_EQ(gr.trees.size(), multipin);
  for (const auto& t : gr.trees) {
    EXPECT_TRUE(tree_connected(t));
    EXPECT_TRUE(is_rectilinear(t));
  }
}

TEST(GlobalRoute, WirelengthGrowsWithSpread) {
  netlist::Netlist nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  auto place = [&](double gap) {
    std::vector<geom::Rect> rects;
    double x = 0.0;
    for (const auto& b : inst.blocks) {
      rects.push_back({x, 0.0, b.shapes[1].w, b.shapes[1].h});
      x += b.shapes[1].w + gap;
    }
    return rects;
  };
  const auto tight = global_route(inst, place(0.5));
  const auto spread = global_route(inst, place(10.0));
  EXPECT_GT(spread.total_wirelength, tight.total_wirelength);
}

}  // namespace
}  // namespace afp::route
