// Unit tests for Generalized Advantage Estimation, checked against
// hand-computed values on tiny sequences.
#include <gtest/gtest.h>

#include "rl/ppo.hpp"

namespace afp::rl {
namespace {

TEST(Gae, SingleTerminalStep) {
  // One step ending the episode: advantage = r - V(s).
  const auto g = compute_gae({2.0f}, {0.5f}, {true}, /*last_value=*/9.0f,
                             0.99f, 0.95f);
  ASSERT_EQ(g.advantages.size(), 1u);
  EXPECT_FLOAT_EQ(g.advantages[0], 1.5f);
  EXPECT_FLOAT_EQ(g.returns[0], 2.0f);  // adv + value
}

TEST(Gae, BootstrapsLastValueWhenNotDone) {
  // One non-terminal step: delta = r + gamma * last_value - V.
  const float gamma = 0.9f;
  const auto g = compute_gae({1.0f}, {0.5f}, {false}, 2.0f, gamma, 0.95f);
  EXPECT_FLOAT_EQ(g.advantages[0], 1.0f + gamma * 2.0f - 0.5f);
}

TEST(Gae, TwoStepHandComputed) {
  // gamma = 0.5, lambda = 0.5 for easy arithmetic; episode ends at t=1.
  // delta1 = r1 - v1 = 4 - 1 = 3           (terminal)
  // delta0 = r0 + 0.5 * v1 - v0 = 1 + 1 - 2 = 0
  // A1 = 3 ; A0 = delta0 + 0.25 * A1 = 0.75
  const auto g = compute_gae({1.0f, 4.0f}, {2.0f, 2.0f}, {false, true},
                             /*last_value=*/99.0f, 0.5f, 0.5f);
  EXPECT_FLOAT_EQ(g.advantages[1], 2.0f);  // 4 - 2
  EXPECT_FLOAT_EQ(g.advantages[0], 1.0f + 0.5f * 2.0f - 2.0f +
                                       0.25f * 2.0f);
}

TEST(Gae, ResetAcrossEpisodeBoundary) {
  // Two one-step episodes in the same stream: the second episode's
  // advantage must not leak into the first... and vice versa.
  const auto g = compute_gae({1.0f, 5.0f}, {0.0f, 0.0f}, {true, true}, 0.0f,
                             0.99f, 0.95f);
  EXPECT_FLOAT_EQ(g.advantages[0], 1.0f);
  EXPECT_FLOAT_EQ(g.advantages[1], 5.0f);
}

TEST(Gae, LambdaOneEqualsMonteCarlo) {
  // With lambda = 1 and a terminal tail, advantage = discounted return - V.
  const float gamma = 0.9f;
  const std::vector<float> r{1.0f, 1.0f, 1.0f};
  const std::vector<float> v{0.2f, 0.4f, 0.6f};
  const auto g = compute_gae(r, v, {false, false, true}, 0.0f, gamma, 1.0f);
  const float g2 = 1.0f;
  const float g1 = 1.0f + gamma * g2;
  const float g0 = 1.0f + gamma * g1;
  EXPECT_NEAR(g.advantages[0], g0 - 0.2f, 1e-5f);
  EXPECT_NEAR(g.advantages[1], g1 - 0.4f, 1e-5f);
  EXPECT_NEAR(g.advantages[2], g2 - 0.6f, 1e-5f);
}

TEST(Gae, LambdaZeroIsOneStepTd) {
  const float gamma = 0.9f;
  const std::vector<float> r{1.0f, 2.0f};
  const std::vector<float> v{0.5f, 0.7f};
  const auto g = compute_gae(r, v, {false, false}, 3.0f, gamma, 0.0f);
  EXPECT_NEAR(g.advantages[0], 1.0f + gamma * 0.7f - 0.5f, 1e-5f);
  EXPECT_NEAR(g.advantages[1], 2.0f + gamma * 3.0f - 0.7f, 1e-5f);
}

TEST(Gae, LengthMismatchThrows) {
  EXPECT_THROW(compute_gae({1.0f}, {1.0f, 2.0f}, {false}, 0.0f, 0.99f, 0.95f),
               std::invalid_argument);
}

TEST(Gae, EmptyStream) {
  const auto g = compute_gae({}, {}, {}, 1.0f, 0.99f, 0.95f);
  EXPECT_TRUE(g.advantages.empty());
  EXPECT_TRUE(g.returns.empty());
}

}  // namespace
}  // namespace afp::rl
