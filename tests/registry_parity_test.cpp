// Registry parity suite: every registered optimizer must (a) construct from
// its name plus default options, (b) round-trip its option map, and (c)
// produce bitwise-identical results to the legacy `core::Method` enum path
// on a Table I circuit at 1 and 4 pool threads.  The registry is the only
// supported way to add a search, so any drift between the two surfaces is a
// regression.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "metaheur/optimizer.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp {
namespace {

/// Small per-optimizer budgets so the 2x8x2 sweep stays fast.
const std::map<std::string, metaheur::Options>& quick_options() {
  static const std::map<std::string, metaheur::Options> opts = {
      {"sa", {{"iterations", "200"}}},
      {"ga", {{"population", "8"}, {"generations", "6"}}},
      {"pso", {{"particles", "8"}, {"iterations", "8"}}},
      {"rlsa", {{"iterations", "200"}}},
      {"rlsp", {{"episodes", "6"}, {"steps_per_episode", "20"}}},
      {"sab", {{"iterations", "200"}}},
      {"pt", {{"replicas", "3"}, {"iterations", "60"}}},
      {"pt-bstar", {{"replicas", "3"}, {"iterations", "60"}}},
  };
  return opts;
}

const std::map<std::string, core::Method>& enum_of() {
  static const std::map<std::string, core::Method> m = {
      {"sa", core::Method::kSA},         {"ga", core::Method::kGA},
      {"pso", core::Method::kPSO},       {"rlsa", core::Method::kRlSa},
      {"rlsp", core::Method::kRlSp},     {"sab", core::Method::kSaBStar},
      {"pt", core::Method::kPT},
  };
  return m;
}

void expect_identical(const core::PipelineResult& a,
                      const core::PipelineResult& b, const std::string& what) {
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  EXPECT_EQ(a.eval.reward, b.eval.reward) << what;
  EXPECT_EQ(a.eval.hpwl, b.eval.hpwl) << what;
  EXPECT_EQ(a.route.total_wirelength, b.route.total_wirelength) << what;
  ASSERT_EQ(a.rects.size(), b.rects.size()) << what;
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    EXPECT_EQ(a.rects[i], b.rects[i]) << what << " rect " << i;
  }
}

TEST(OptimizerRegistry, RegistersTheEightBuiltins) {
  const std::vector<std::string> expected = {"ga", "pso",      "pt", "pt-bstar",
                                             "rlsa", "rlsp",   "sa", "sab"};
  EXPECT_EQ(metaheur::optimizer_names(), expected);
  for (const auto& name : expected) {
    EXPECT_TRUE(metaheur::OptimizerRegistry::global().contains(name));
  }
  EXPECT_FALSE(metaheur::OptimizerRegistry::global().contains("nope"));
}

TEST(OptimizerRegistry, EveryBuiltinConstructsAndDescribes) {
  for (const auto& name : metaheur::optimizer_names()) {
    auto opt = metaheur::make_optimizer(name);
    EXPECT_EQ(opt->name(), name);
    const std::string enc = opt->encoding();
    EXPECT_TRUE(enc == "sequence-pair" || enc == "b*-tree") << name;
    EXPECT_FALSE(opt->describe().empty()) << name;
    for (const auto& spec : opt->describe()) {
      EXPECT_FALSE(spec.key.empty()) << name;
      EXPECT_FALSE(spec.value.empty()) << name << " " << spec.key;
      EXPECT_FALSE(spec.help.empty()) << name << " " << spec.key;
    }
  }
}

TEST(OptimizerRegistry, UnknownNameAndDuplicateThrow) {
  EXPECT_THROW(metaheur::make_optimizer("bogus"), std::invalid_argument);
  EXPECT_THROW(metaheur::OptimizerRegistry::global().add("sa", nullptr),
               std::invalid_argument);
}

TEST(OptimizerOptions, RoundTripAndValidation) {
  auto opt = metaheur::make_optimizer(
      "sa", {{"iterations", "123"}, {"t_start", "1.5"}});
  const auto opts = opt->options();
  EXPECT_EQ(opts.at("iterations"), "123");
  EXPECT_EQ(opts.at("t_start"), "1.5");
  // Reconfiguring from the round-tripped map is a no-op.
  auto copy = metaheur::make_optimizer("sa", opts);
  EXPECT_EQ(copy->options(), opts);

  EXPECT_THROW(metaheur::make_optimizer("sa", {{"bogus_key", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("sa", {{"iterations", "12x"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("pt", {{"adaptive_swap", "maybe"}}),
               std::invalid_argument);
  // Range and finiteness are validated at configure time, not deep in run().
  EXPECT_THROW(metaheur::make_optimizer("pt", {{"replicas", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("ga", {{"population", "0"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("sa", {{"iterations", "-5"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("sa", {{"t_start", "inf"}}),
               std::invalid_argument);
  EXPECT_THROW(metaheur::make_optimizer("sa", {{"t_end", "nan"}}),
               std::invalid_argument);
}

TEST(OptimizerOptions, BudgetOverridesPrimaryKnob) {
  const auto nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  auto by_option = metaheur::make_optimizer("sa", {{"iterations", "77"}});
  auto by_budget = metaheur::make_optimizer("sa");
  std::mt19937_64 r1(5), r2(5);
  const auto a = by_option->run(inst, {}, r1);
  const auto b = by_budget->run(inst, {/*iterations=*/77, 0.0}, r2);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.rects, b.rects);
}

/// Registry-vs-enum parity over the pipeline on a Table I circuit (ota2),
/// at 1 and 4 pool threads.  The seven enum methods run both surfaces;
/// pt-bstar (registry-only) is checked against a hand-replicated legacy
/// call into metaheur::run_pt with the B*-tree representation.
TEST(RegistryParity, MatchesLegacyEnumPathBitwise) {
  const auto nl = netlist::make_ota2();
  for (const int threads : {1, 4}) {
    num::set_num_threads(threads);
    for (const auto& [name, method] : enum_of()) {
      core::PipelineConfig cfg;
      cfg.optimizer = name;
      cfg.options = quick_options().at(name);
      core::FloorplanPipeline pipe(cfg);
      std::mt19937_64 r_enum(42), r_registry(42);
      const auto via_enum = pipe.run(nl, method, r_enum);
      const auto via_registry = pipe.run(nl, r_registry);
      EXPECT_EQ(via_registry.optimizer, name);
      expect_identical(via_enum, via_registry,
                       name + " @" + std::to_string(threads) + " threads");
    }
  }
  num::set_num_threads(0);
}

TEST(RegistryParity, PtBstarMatchesDirectLegacyCall) {
  const auto nl = netlist::make_ota2();
  for (const int threads : {1, 4}) {
    num::set_num_threads(threads);
    core::PipelineConfig cfg;
    cfg.optimizer = "pt-bstar";
    cfg.options = quick_options().at("pt-bstar");
    core::FloorplanPipeline pipe(cfg);
    std::mt19937_64 r_registry(42);
    const auto via_registry = pipe.run(nl, r_registry);

    // Legacy call: what pre-registry code did for PT over B*-trees.
    std::mt19937_64 r_legacy(42);
    const auto prep = pipe.prepare(nl, r_legacy);
    metaheur::PTParams p;
    p.representation = metaheur::Representation::kBStarTree;
    p.replicas = 3;
    p.iterations = 60;
    const auto legacy = metaheur::run_pt(prep.instance, p, r_legacy);
    ASSERT_EQ(via_registry.rects.size(), legacy.rects.size());
    for (std::size_t i = 0; i < legacy.rects.size(); ++i) {
      EXPECT_EQ(via_registry.rects[i], legacy.rects[i])
          << "rect " << i << " @" << threads << " threads";
    }
    EXPECT_EQ(via_registry.evaluations, legacy.evaluations);
  }
  num::set_num_threads(0);
}

TEST(RegistryParity, MultiStartGoesThroughRegistryUnchanged) {
  // restarts > 1 fans out on the pool; the registry path must match the
  // enum path there too (same base-seed draw, same per-restart streams).
  const auto nl = netlist::make_ota_small();
  core::PipelineConfig cfg;
  cfg.optimizer = "sa";
  cfg.options = {{"iterations", "150"}};
  cfg.search.restarts = 3;
  cfg.search.base_seed = 9;
  core::FloorplanPipeline pipe(cfg);
  for (const int threads : {1, 4}) {
    num::set_num_threads(threads);
    std::mt19937_64 r_enum(1), r_registry(1);
    const auto via_enum = pipe.run(nl, core::Method::kSA, r_enum);
    const auto via_registry = pipe.run(nl, r_registry);
    expect_identical(via_enum, via_registry,
                     "SAx3 @" + std::to_string(threads) + " threads");
  }
  num::set_num_threads(0);
}

TEST(MethodShim, RgcnRlThrowsAndNamesMap) {
  EXPECT_THROW(core::optimizer_name(core::Method::kRgcnRl),
               std::invalid_argument);
  EXPECT_EQ(core::optimizer_name(core::Method::kSA), "sa");
  EXPECT_EQ(core::optimizer_name(core::Method::kSaBStar), "sab");
  EXPECT_EQ(core::optimizer_name(core::Method::kPT), "pt");
}

}  // namespace
}  // namespace afp
