// Cross-module integration tests: checkpoint round-trips through training,
// determinism of the full pipeline, SPICE-text entry point, and failure
// injection.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "netlist/library.hpp"
#include "nn/checkpoint.hpp"

namespace afp {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Checkpoint, PolicyRoundTripPreservesBehaviour) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);

  auto nl = netlist::make_ota1();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto task = rl::make_task(encoder, std::move(g));
  std::mt19937_64 r1(5);
  const auto before = rl::run_episode(policy, task, r1, true);

  const std::string path = tmp_path("afp_policy_ckpt.bin");
  nn::save_module(policy, path);

  // A fresh policy behaves differently; loading restores behaviour.
  std::mt19937_64 rng2(99);
  rl::ActorCritic restored(rl::PolicyConfig::fast(), rng2);
  nn::load_module(restored, path);
  std::mt19937_64 r2(5);
  const auto after = rl::run_episode(restored, task, r2, true);
  ASSERT_EQ(before.rects.size(), after.rects.size());
  for (std::size_t i = 0; i < before.rects.size(); ++i) {
    EXPECT_EQ(before.rects[i], after.rects[i]);
  }
  std::filesystem::remove(path);
}

TEST(Checkpoint, EncoderRoundTripPreservesEmbeddings) {
  std::mt19937_64 rng(2);
  rgcn::RewardModel encoder(rng);
  auto nl = netlist::make_bias1();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const float before = encoder.predict(g).item();

  const std::string path = tmp_path("afp_encoder_ckpt.bin");
  nn::save_module(encoder, path);
  std::mt19937_64 rng2(77);
  rgcn::RewardModel restored(rng2);
  EXPECT_NE(restored.predict(g).item(), before);
  nn::load_module(restored, path);
  EXPECT_FLOAT_EQ(restored.predict(g).item(), before);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ArchitectureMismatchRejected) {
  std::mt19937_64 rng(3);
  rl::ActorCritic small(rl::PolicyConfig::fast(), rng);
  const std::string path = tmp_path("afp_mismatch_ckpt.bin");
  nn::save_module(small, path);
  rl::PolicyConfig big = rl::PolicyConfig::fast();
  big.feat_dim = 256;
  rl::ActorCritic other(big, rng);
  EXPECT_THROW(nn::load_module(other, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Pipeline, DeterministicGivenSeed) {
  core::PipelineConfig cfg;
  cfg.options = {{"iterations", "300"}};
  core::FloorplanPipeline pipe(cfg);
  std::mt19937_64 r1(11), r2(11);
  const auto a = pipe.run(netlist::make_ota2(), core::Method::kSA, r1);
  const auto b = pipe.run(netlist::make_ota2(), core::Method::kSA, r2);
  ASSERT_EQ(a.rects.size(), b.rects.size());
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    EXPECT_EQ(a.rects[i], b.rects[i]);
  }
  EXPECT_DOUBLE_EQ(a.eval.reward, b.eval.reward);
  EXPECT_DOUBLE_EQ(a.route.total_wirelength, b.route.total_wirelength);
}

TEST(Pipeline, RunsFromSpiceText) {
  // End to end from raw SPICE text rather than a library generator.
  const std::string text = netlist::make_ota_small().to_spice();
  const auto nl = netlist::Netlist::from_spice(text);
  std::mt19937_64 rng(4);
  core::PipelineConfig cfg;
  cfg.options = {{"iterations", "300"}};
  core::FloorplanPipeline pipe(cfg);
  const auto res = pipe.run(nl, core::Method::kSA, rng);
  EXPECT_EQ(res.rects.size(), 3u);
  EXPECT_EQ(res.route.failed_nets, 0);
}

TEST(Pipeline, ConstrainedRunSatisfiesConstraintsWhenComplete) {
  core::PipelineConfig cfg;
  cfg.constrained = true;
  cfg.options = {{"iterations", "2500"}};
  core::FloorplanPipeline pipe(cfg);
  std::mt19937_64 rng(5);
  const auto res = pipe.run(netlist::make_ota_small(), core::Method::kSA, rng);
  // SA may or may not satisfy the constraints (soft penalty), but the
  // evaluation must report it consistently.
  EXPECT_EQ(res.eval.constraints_ok,
            floorplan::constraints_satisfied(res.instance, res.rects, 1e-6));
}

TEST(Training, HistoriesAreConsistent) {
  core::TrainOptions opt = core::TrainOptions::fast(21);
  opt.hcl.circuits = {"ota_small"};
  opt.hcl.episodes_per_circuit = 6;
  const auto agent = core::train_agent(opt);
  ASSERT_FALSE(agent.rl_history.empty());
  for (const auto& s : agent.rl_history) {
    EXPECT_TRUE(std::isfinite(s.policy_loss));
    EXPECT_TRUE(std::isfinite(s.value_loss));
    EXPECT_GE(s.violation_rate, 0.0);
    EXPECT_LE(s.violation_rate, 1.0);
  }
  for (int stage : agent.stage_history) EXPECT_EQ(stage, 0);
}

TEST(Training, TrainedAgentSurvivesCheckpointCycle) {
  core::TrainOptions opt = core::TrainOptions::fast(22);
  opt.hcl.circuits = {"ota_small"};
  opt.hcl.episodes_per_circuit = 6;
  const auto agent = core::train_agent(opt);

  const std::string ppath = tmp_path("afp_agent_policy.bin");
  const std::string epath = tmp_path("afp_agent_encoder.bin");
  nn::save_module(*agent.policy, ppath);
  nn::save_module(*agent.encoder, epath);

  std::mt19937_64 rng(23);
  rgcn::RewardModel enc2(rng);
  rl::ActorCritic pol2(agent.policy->config(), rng);
  nn::load_module(enc2, epath);
  nn::load_module(pol2, ppath);

  auto nl = netlist::make_ota1();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto t1 = rl::make_task(*agent.encoder, g);
  const auto t2 = rl::make_task(enc2, g);
  std::mt19937_64 ra(9), rb(9);
  const auto ea = rl::run_episode(*agent.policy, t1, ra, true);
  const auto eb = rl::run_episode(pol2, t2, rb, true);
  ASSERT_EQ(ea.rects.size(), eb.rects.size());
  for (std::size_t i = 0; i < ea.rects.size(); ++i) {
    EXPECT_EQ(ea.rects[i], eb.rects[i]);
  }
  std::filesystem::remove(ppath);
  std::filesystem::remove(epath);
}

TEST(FailureInjection, CorruptCheckpointRejected) {
  const std::string path = tmp_path("afp_corrupt.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOTAFPT-GARBAGE";
  }
  std::mt19937_64 rng(1);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  EXPECT_THROW(nn::load_module(policy, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FailureInjection, TruncatedCheckpointRejected) {
  std::mt19937_64 rng(1);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  const std::string path = tmp_path("afp_truncated.bin");
  nn::save_module(policy, path);
  // Truncate the file to half its size.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(nn::load_module(policy, path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace afp
