#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "netlist/netlist.hpp"

namespace afp::netlist {
namespace {

TEST(Device, AreaModels) {
  Device mos{"m1", DeviceType::kNmos, {"d", "g", "s", "b"}, 10.0, 0.18, 2};
  EXPECT_GT(mos.area_um2(), 0.0);
  // More fingers with the same total width shrink the footprint height but
  // multiply stripes; area stays in the same ballpark and positive.
  Device mos4 = mos;
  mos4.fingers = 4;
  EXPECT_GT(mos4.area_um2(), 0.0);

  Device res{"r1", DeviceType::kResistor, {"a", "b"}, 0, 0, 1, 10000.0};
  Device res2 = res;
  res2.value = 20000.0;
  EXPECT_GT(res2.area_um2(), res.area_um2());

  Device cap{"c1", DeviceType::kCapacitor, {"a", "b"}, 0, 0, 1, 1e-12};
  EXPECT_NEAR(cap.area_um2(), 500.0, 1.0);  // ~2 fF/um^2
}

TEST(Device, TerminalArityEnforced) {
  Netlist nl;
  EXPECT_THROW(
      nl.add_device({"m", DeviceType::kNmos, {"d", "g", "s"}, 1.0}),
      std::invalid_argument);
  EXPECT_THROW(
      nl.add_device({"r", DeviceType::kResistor, {"a", "b", "c"}, 0, 0, 1, 1.0}),
      std::invalid_argument);
}

TEST(Net, SupplyDetection) {
  EXPECT_TRUE((Net{"VDD", {}}).is_supply());
  EXPECT_TRUE((Net{"vss", {}}).is_supply());
  EXPECT_TRUE((Net{"GND", {}}).is_supply());
  EXPECT_FALSE((Net{"out", {}}).is_supply());
}

TEST(Netlist, NetsDerivedFromTerminals) {
  Netlist nl = make_ota_small();
  const auto nets = nl.nets();
  EXPECT_GT(nets.size(), 3u);
  // Every device terminal shows up exactly once as a pin.
  std::size_t pin_count = 0;
  for (const auto& n : nets) pin_count += n.pins.size();
  std::size_t term_count = 0;
  for (const auto& d : nl.devices()) term_count += d.terminals.size();
  EXPECT_EQ(pin_count, term_count);
}

TEST(Netlist, DevicesOnNet) {
  Netlist nl = make_ota_small();
  const auto on_tail = nl.devices_on_net("tail");
  EXPECT_EQ(on_tail.size(), 3u);  // diff pair (2) + tail source
}

TEST(Spice, RoundTrip) {
  const Netlist orig = make_ota2();
  const std::string text = orig.to_spice();
  const Netlist parsed = Netlist::from_spice(text);
  EXPECT_EQ(parsed.name(), orig.name());
  EXPECT_EQ(parsed.ports(), orig.ports());
  ASSERT_EQ(parsed.num_devices(), orig.num_devices());
  for (int i = 0; i < orig.num_devices(); ++i) {
    EXPECT_EQ(parsed.device(i).name, orig.device(i).name);
    EXPECT_EQ(parsed.device(i).type, orig.device(i).type);
    EXPECT_EQ(parsed.device(i).terminals, orig.device(i).terminals);
    if (orig.device(i).is_mos()) {
      EXPECT_NEAR(parsed.device(i).width_um, orig.device(i).width_um, 1e-9);
      EXPECT_EQ(parsed.device(i).fingers, orig.device(i).fingers);
    } else {
      EXPECT_NEAR(parsed.device(i).value, orig.device(i).value,
                  1e-9 * std::abs(orig.device(i).value));
    }
  }
}

TEST(Spice, ParsesComments) {
  const std::string text =
      "* comment line\n"
      ".subckt inv VDD VSS in out\n"
      "MP1 out in VDD VDD pmos W=2.0 L=0.18 NF=1\n"
      "MN1 out in VSS VSS nmos W=1.0 L=0.18 NF=1\n"
      ".ends\n";
  const Netlist nl = Netlist::from_spice(text);
  EXPECT_EQ(nl.num_devices(), 2);
  EXPECT_EQ(nl.device(0).type, DeviceType::kPmos);
  EXPECT_EQ(nl.device(1).type, DeviceType::kNmos);
}

TEST(Spice, MalformedThrows) {
  EXPECT_THROW(Netlist::from_spice("MX a b\n"), std::runtime_error);
  EXPECT_THROW(
      Netlist::from_spice(".subckt x\nQ1 a b c\n.ends\n"),
      std::runtime_error);
}

TEST(Library, RegistryCircuitsBuild) {
  for (const auto& entry : circuit_registry()) {
    const Netlist nl = entry.make();
    EXPECT_GT(nl.num_devices(), 0) << entry.name;
    EXPECT_GT(nl.total_device_area(), 0.0) << entry.name;
  }
}

TEST(Library, BlockCountCircuitsHaveExpectedDeviceMix) {
  EXPECT_EQ(make_ota_small().num_devices(), 5);   // DP(2)+CM(2)+tail
  EXPECT_GE(make_driver().num_devices(), 17);
  EXPECT_GE(make_bias2().num_devices(), 19);
}

TEST(Library, PerturbPreservesTopologyAndMatching) {
  std::mt19937_64 rng(3);
  const Netlist orig = make_ota1();
  const Netlist pert = perturb_sizes(orig, rng);
  ASSERT_EQ(pert.num_devices(), orig.num_devices());
  for (int i = 0; i < orig.num_devices(); ++i) {
    EXPECT_EQ(pert.device(i).terminals, orig.device(i).terminals);
  }
  // The diff-pair devices (same original W) stay matched.
  EXPECT_DOUBLE_EQ(pert.device(0).width_um, pert.device(1).width_um);
  // But sizes did change somewhere.
  bool changed = false;
  for (int i = 0; i < orig.num_devices(); ++i) {
    if (std::abs(pert.device(i).width_um - orig.device(i).width_um) > 1e-12 ||
        std::abs(pert.device(i).value - orig.device(i).value) > 1e-18) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Library, RingOscillatorScales) {
  EXPECT_EQ(make_ring_oscillator(3).num_devices(), 6);
  EXPECT_EQ(make_ring_oscillator(7).num_devices(), 14);
}

}  // namespace
}  // namespace afp::netlist
