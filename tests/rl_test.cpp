#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "rl/agent.hpp"
#include "rl/curriculum.hpp"

namespace afp::rl {
namespace {

graphir::CircuitGraph graph_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  return graphir::build_graph(nl, structrec::recognize(nl));
}

TEST(PolicyConfig, PaperArchitectureParameters) {
  std::mt19937_64 rng(1);
  const PolicyConfig cfg = PolicyConfig::paper();
  EXPECT_EQ(cfg.conv_channels, (std::vector<int>{16, 32, 32, 64, 64}));
  EXPECT_EQ(cfg.deconv_channels, (std::vector<int>{32, 16, 8}));
  EXPECT_EQ(cfg.feat_dim, 512);
  ActorCritic net(cfg, rng);
  EXPECT_EQ(net.action_space(), 3072);
  // The 64ch * 32 * 32 flatten into 512 dominates (~33.5M params).
  EXPECT_GT(net.parameter_count(), 30000000);
}

TEST(ActorCritic, FastForwardShapes) {
  std::mt19937_64 rng(2);
  ActorCritic net(PolicyConfig::fast(), rng);
  const int B = 3;
  num::Tensor masks = num::Tensor::randn({B, 6, 32, 32}, rng, 0.5f);
  num::Tensor node = num::Tensor::randn({B, 32}, rng);
  num::Tensor graph = num::Tensor::randn({B, 32}, rng);
  const auto out = net.forward(masks, node, graph);
  EXPECT_EQ(out.logits.shape(), (num::Shape{B, 3072}));
  EXPECT_EQ(out.value.shape(), (num::Shape{B}));
  for (int i = 0; i < B; ++i) EXPECT_TRUE(std::isfinite(out.value.at(i)));
}

TEST(ActorCritic, RejectsMismatchedDeconvChain) {
  std::mt19937_64 rng(3);
  PolicyConfig cfg = PolicyConfig::fast();
  cfg.deconv_channels = {8, 8};  // 4 -> 16 != 32
  EXPECT_THROW(ActorCritic(cfg, rng), std::invalid_argument);
}

TEST(Task, EmbeddingsCachedPerBlock) {
  std::mt19937_64 rng(4);
  rgcn::RewardModel encoder(rng);
  const TaskContext task = make_task(encoder, graph_of("ota2"));
  EXPECT_EQ(task.instance.num_blocks(), 8);
  EXPECT_EQ(task.node_emb.size(),
            static_cast<std::size_t>(8 * rgcn::kEmbeddingDim));
  EXPECT_EQ(task.graph_emb.size(),
            static_cast<std::size_t>(rgcn::kEmbeddingDim));
  // node_row indexes rows correctly.
  EXPECT_EQ(task.node_row(2),
            task.node_emb.data() + 2 * rgcn::kEmbeddingDim);
}

TEST(Task, HpwlRefOverride) {
  std::mt19937_64 rng(5);
  rgcn::RewardModel encoder(rng);
  const TaskContext t1 = make_task(encoder, graph_of("ota_small"), 123.0);
  EXPECT_DOUBLE_EQ(t1.instance.hpwl_ref, 123.0);
  const TaskContext t2 =
      make_task(encoder, graph_of("ota_small"), 0.0, 2.0);
  ASSERT_TRUE(t2.instance.target_aspect.has_value());
  EXPECT_DOUBLE_EQ(*t2.instance.target_aspect, 2.0);
}

TEST(RunEpisode, CompletesAndScores) {
  std::mt19937_64 rng(6);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  const TaskContext task = make_task(encoder, graph_of("ota_small"));
  const EpisodeResult res = run_episode(net, task, rng);
  EXPECT_FALSE(res.violated);
  ASSERT_EQ(res.rects.size(), 3u);
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
  EXPECT_GT(res.runtime_s, 0.0);
  EXPECT_TRUE(std::isfinite(res.eval.reward));
}

TEST(RunEpisode, DeterministicIsRepeatable) {
  std::mt19937_64 rng(7);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  const TaskContext task = make_task(encoder, graph_of("ota1"));
  const auto r1 = run_episode(net, task, rng, true);
  const auto r2 = run_episode(net, task, rng, true);
  ASSERT_EQ(r1.rects.size(), r2.rects.size());
  for (std::size_t i = 0; i < r1.rects.size(); ++i) {
    EXPECT_EQ(r1.rects[i], r2.rects[i]);
  }
}

TEST(BestOfEpisodes, NeverWorseThanDeterministic) {
  std::mt19937_64 rng(8);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  const TaskContext task = make_task(encoder, graph_of("ota1"));
  std::mt19937_64 r1(9), r2(9);
  const auto det = run_episode(net, task, r1, true);
  const auto best = best_of_episodes(net, task, 4, r2);
  EXPECT_GE(best.eval.reward, det.eval.reward - 1e-9);
}

TEST(PPOTrainer, IterateProducesFiniteStatsAndEpisodes) {
  std::mt19937_64 rng(10);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  PPOConfig cfg;
  cfg.n_envs = 2;
  cfg.n_steps = 8;
  cfg.minibatch = 8;
  cfg.epochs = 2;
  PPOTrainer trainer(net, {make_task(encoder, graph_of("ota_small"))}, cfg);
  const auto stats = trainer.iterate(rng);
  EXPECT_GT(stats.episodes, 0);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));
  EXPECT_TRUE(std::isfinite(stats.value_loss));
  EXPECT_TRUE(std::isfinite(stats.approx_kl));
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_EQ(trainer.episodes_done(), stats.episodes);
}

TEST(PPOTrainer, LearningImprovesSmallCircuitReward) {
  // Smoke-level learning check: with a tiny budget the mean episode
  // reward on the 3-block OTA should not collapse, and the policy should
  // keep producing valid floorplans.
  std::mt19937_64 rng(11);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  PPOConfig cfg;
  cfg.n_envs = 2;
  cfg.n_steps = 12;
  cfg.minibatch = 12;
  cfg.epochs = 2;
  PPOTrainer trainer(net, {make_task(encoder, graph_of("ota_small"))}, cfg);
  double first = 0.0, last = 0.0;
  const int iters = 6;
  for (int i = 0; i < iters; ++i) {
    const auto s = trainer.iterate(rng);
    if (i == 0) first = s.mean_episode_reward;
    last = s.mean_episode_reward;
    EXPECT_LE(s.violation_rate, 1.0);
  }
  EXPECT_TRUE(std::isfinite(first));
  EXPECT_TRUE(std::isfinite(last));
  EXPECT_GT(last, -60.0);
}

TEST(PPOTrainer, NextTaskHookSwapsCircuits) {
  std::mt19937_64 rng(12);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  PPOConfig cfg;
  cfg.n_envs = 1;
  cfg.n_steps = 8;
  cfg.minibatch = 8;
  cfg.epochs = 1;
  PPOTrainer trainer(net, {make_task(encoder, graph_of("ota_small"))}, cfg);
  int swaps = 0;
  trainer.next_task = [&](int) {
    ++swaps;
    return std::optional<TaskContext>(
        make_task(encoder, graph_of("bias_small")));
  };
  (void)trainer.iterate(rng);
  EXPECT_GT(swaps, 0);
}

TEST(FineTune, RunsRequestedEpisodes) {
  std::mt19937_64 rng(13);
  rgcn::RewardModel encoder(rng);
  ActorCritic net(PolicyConfig::fast(), rng);
  PPOConfig cfg;
  cfg.n_envs = 2;
  cfg.n_steps = 8;
  cfg.minibatch = 8;
  cfg.epochs = 1;
  const auto task = make_task(encoder, graph_of("ota_small"));
  const auto stats = fine_tune(net, task, 6, rng, cfg);
  EXPECT_FALSE(stats.empty());
  long total = 0;
  for (const auto& s : stats) total += s.episodes;
  EXPECT_GE(total, 6);
}

TEST(Hcl, ScheduleProgressesThroughStages) {
  std::mt19937_64 rng(14);
  rgcn::RewardModel encoder(rng);
  HclConfig cfg;
  cfg.circuits = {"ota_small", "bias_small"};
  cfg.episodes_per_circuit = 4;
  HclScheduler sched(cfg, encoder, rng);
  EXPECT_FALSE(sched.finished());
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back(sched.next_task(rng).instance.name);
  }
  EXPECT_TRUE(sched.finished());
  // First half of stage 0 is purely the stage circuit.
  EXPECT_EQ(names[0], "ota_small");
  EXPECT_EQ(names[1], "ota_small");
  // Stage 1 first half is purely bias_small.
  EXPECT_EQ(names[4], "bias_small");
  EXPECT_EQ(names[5], "bias_small");
}

TEST(Hcl, SecondHalfSamplesSeenCircuits) {
  std::mt19937_64 rng(15);
  rgcn::RewardModel encoder(rng);
  HclConfig cfg;
  cfg.circuits = {"ota_small", "bias_small"};
  cfg.episodes_per_circuit = 40;
  cfg.p_circuit = 1.0;  // always resample in the mixing phase
  HclScheduler sched(cfg, encoder, rng);
  // Skip to the mixing half of stage 1.
  for (int i = 0; i < 61; ++i) (void)sched.next_task(rng);
  std::set<std::string> seen;
  for (int i = 0; i < 15; ++i) seen.insert(sched.next_task(rng).instance.name);
  EXPECT_GE(seen.size(), 2u);  // revisits earlier circuits
}

TEST(Hcl, ConstraintProbabilityActivates) {
  std::mt19937_64 rng(16);
  rgcn::RewardModel encoder(rng);
  HclConfig cfg;
  cfg.circuits = {"ota_small"};
  cfg.episodes_per_circuit = 60;
  cfg.p_constraint = 1.0;
  HclScheduler sched(cfg, encoder, rng);
  for (int i = 0; i < 30; ++i) {
    EXPECT_TRUE(sched.next_task(rng).instance.constraints.empty());
  }
  bool constrained_seen = false;
  for (int i = 0; i < 30; ++i) {
    constrained_seen = constrained_seen ||
                       !sched.next_task(rng).instance.constraints.empty();
  }
  EXPECT_TRUE(constrained_seen);
}

TEST(Hcl, UnknownCircuitThrows) {
  std::mt19937_64 rng(17);
  rgcn::RewardModel encoder(rng);
  HclConfig cfg;
  cfg.circuits = {"no_such_circuit"};
  HclScheduler sched(cfg, encoder, rng);
  EXPECT_THROW(sched.next_task(rng), std::invalid_argument);
}

}  // namespace
}  // namespace afp::rl
