#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "numeric/ops.hpp"
#include "numeric/optim.hpp"
#include "numeric/serialize.hpp"
#include "numeric/tensor.hpp"

namespace afp::num {
namespace {

/// Finite-difference gradient check: |analytic - numeric| must stay within
/// tolerance for every input coordinate.
void grad_check(const std::function<Tensor(std::vector<Tensor>&)>& fn,
                std::vector<Tensor> inputs, float tol = 2e-2f,
                float eps = 1e-3f) {
  Tensor out = fn(inputs);
  ASSERT_EQ(out.size(), 1) << "grad_check needs a scalar output";
  for (auto& t : inputs) t.zero_grad();
  out.backward();
  for (std::size_t ti = 0; ti < inputs.size(); ++ti) {
    Tensor& t = inputs[ti];
    if (!t.requires_grad()) continue;
    for (std::int64_t i = 0; i < t.size(); ++i) {
      const float orig = t.at(i);
      t.set(i, orig + eps);
      const float up = fn(inputs).item();
      t.set(i, orig - eps);
      const float dn = fn(inputs).item();
      t.set(i, orig);
      const float numeric = (up - dn) / (2.0f * eps);
      const float analytic = t.grad()[static_cast<std::size_t>(i)];
      // Relative tolerance: float32 finite differences lose precision as
      // gradient magnitudes grow.
      const float bound = tol * std::max(1.0f, std::abs(numeric));
      EXPECT_NEAR(analytic, numeric, bound)
          << "input " << ti << " coord " << i;
    }
  }
}

std::mt19937_64 rng_fixed() { return std::mt19937_64(42); }

TEST(Tensor, CreationAndShape) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.size(), 6);
  EXPECT_EQ(z.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(z.at(0), 0.0f);
  Tensor o = Tensor::ones({4});
  EXPECT_FLOAT_EQ(o.at(3), 1.0f);
  Tensor f = Tensor::full({2}, 2.5f);
  EXPECT_FLOAT_EQ(f.at(1), 2.5f);
  EXPECT_FLOAT_EQ(Tensor::scalar(7.0f).item(), 7.0f);
}

TEST(Tensor, FromVectorValidatesSize) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.0f, 2.0f}),
               std::invalid_argument);
}

TEST(Tensor, RandnDeterministicWithSeed) {
  auto r1 = rng_fixed();
  auto r2 = rng_fixed();
  Tensor a = Tensor::randn({8}, r1);
  Tensor b = Tensor::randn({8}, r2);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(Tensor, DetachBreaksGraph) {
  Tensor a = Tensor::full({1}, 2.0f, true);
  Tensor b = mul_scalar(a, 3.0f).detach();
  EXPECT_FALSE(b.requires_grad());
  EXPECT_FLOAT_EQ(b.item(), 6.0f);
}

TEST(Tensor, NoGradGuardDisablesTracking) {
  Tensor a = Tensor::full({1}, 2.0f, true);
  {
    NoGradGuard ng;
    Tensor b = mul_scalar(a, 3.0f);
    EXPECT_FALSE(b.requires_grad());
  }
  Tensor c = mul_scalar(a, 3.0f);
  EXPECT_TRUE(c.requires_grad());
}

TEST(Tensor, BackwardRequiresScalar) {
  Tensor a = Tensor::ones({2}, true);
  EXPECT_THROW(a.backward(), std::logic_error);
}

TEST(Ops, AddSubMulDivValues) {
  Tensor a = Tensor::from_vector({3}, {1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from_vector({3}, {4.0f, 5.0f, 6.0f});
  EXPECT_FLOAT_EQ(add(a, b).at(2), 9.0f);
  EXPECT_FLOAT_EQ(sub(a, b).at(0), -3.0f);
  EXPECT_FLOAT_EQ(mul(a, b).at(1), 10.0f);
  EXPECT_NEAR(div(a, b).at(1), 0.4f, 1e-6f);
}

TEST(Ops, ShapeMismatchThrows) {
  Tensor a = Tensor::ones({2});
  Tensor b = Tensor::ones({3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul(a, b), std::invalid_argument);
}

TEST(GradCheck, Binary) {
  auto rng = rng_fixed();
  for (auto op : {add, sub, mul}) {
    std::vector<Tensor> in{Tensor::randn({2, 3}, rng, 1.0f, true),
                           Tensor::randn({2, 3}, rng, 1.0f, true)};
    grad_check([op](std::vector<Tensor>& v) { return sum_all(op(v[0], v[1])); },
               in);
  }
}

TEST(GradCheck, Div) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({6}, rng, 1.0f, true),
                         Tensor::uniform({6}, rng, 1.0f, 2.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(div(v[0], v[1])); }, in);
}

TEST(GradCheck, MinimumMaximum) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({8}, rng, 1.0f, true),
                         Tensor::randn({8}, rng, 1.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(minimum(v[0], v[1])); }, in);
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(maximum(v[0], v[1])); }, in);
}

TEST(GradCheck, Unary) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 4}, rng, 1.0f, true)};
  grad_check([](std::vector<Tensor>& v) { return sum_all(tanh_op(v[0])); }, in);
  grad_check([](std::vector<Tensor>& v) { return sum_all(sigmoid(v[0])); }, in);
  grad_check([](std::vector<Tensor>& v) { return sum_all(square(v[0])); }, in);
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(mul_scalar(v[0], 2.5f)); },
      in);
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(add_scalar(v[0], 1.5f)); },
      in);
}

TEST(GradCheck, ExpLog) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::uniform({6}, rng, 0.5f, 2.0f, true)};
  grad_check([](std::vector<Tensor>& v) { return sum_all(exp_op(v[0])); }, in);
  grad_check([](std::vector<Tensor>& v) { return sum_all(log_op(v[0])); }, in);
}

TEST(GradCheck, ReluAwayFromKink) {
  // Sample away from 0 so finite differences are well defined.
  Tensor t = Tensor::from_vector({4}, {-1.0f, -0.5f, 0.5f, 1.0f}, true);
  std::vector<Tensor> in{t};
  grad_check([](std::vector<Tensor>& v) { return sum_all(relu(v[0])); }, in);
}

TEST(GradCheck, ClampAwayFromBoundary) {
  Tensor t = Tensor::from_vector({4}, {-2.0f, -0.3f, 0.4f, 3.0f}, true);
  std::vector<Tensor> in{t};
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(clamp(v[0], -1.0f, 1.0f)); },
      in);
}

TEST(GradCheck, MatmulAndLinear) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 3}, rng, 1.0f, true),
                         Tensor::randn({3, 4}, rng, 1.0f, true),
                         Tensor::randn({4}, rng, 1.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(matmul(v[0], v[1])); }, in);
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(linear(v[0], v[1], v[2]));
      },
      in);
}

TEST(Ops, MatmulValues) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(2), 43.0f);
  EXPECT_FLOAT_EQ(c.at(3), 50.0f);
}

TEST(GradCheck, Reductions) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({3, 4}, rng, 1.0f, true)};
  grad_check([](std::vector<Tensor>& v) { return mean_all(v[0]); }, in);
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(mean_axis0(v[0])); }, in);
  grad_check(
      [](std::vector<Tensor>& v) { return sum_all(sum_axis1(v[0])); }, in);
}

TEST(Ops, MeanAxis0Values) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor m = mean_axis0(a);
  EXPECT_EQ(m.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(m.at(0), 2.0f);
  EXPECT_FLOAT_EQ(m.at(1), 3.0f);
}

TEST(GradCheck, SoftmaxFamily) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 5}, rng, 1.0f, true)};
  // Weighted sums make the check sensitive to off-diagonal Jacobian terms.
  Tensor w = Tensor::from_vector({2, 5}, {0.1f, -0.4f, 0.7f, 0.2f, -0.9f,
                                          0.5f, 0.3f, -0.2f, 0.8f, -0.1f});
  grad_check(
      [w](std::vector<Tensor>& v) {
        return sum_all(mul(softmax_rows(v[0]), w));
      },
      in);
  grad_check(
      [w](std::vector<Tensor>& v) {
        return sum_all(mul(log_softmax_rows(v[0]), w));
      },
      in);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  auto rng = rng_fixed();
  Tensor x = Tensor::randn({3, 7}, rng, 3.0f);
  Tensor p = softmax_rows(x);
  for (int r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 7; ++c) sum += p.at(r * 7 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, LogSoftmaxHandlesLargeNegatives) {
  Tensor x = Tensor::from_vector({1, 3}, {0.0f, -1e9f, 1.0f});
  Tensor lp = log_softmax_rows(x);
  EXPECT_TRUE(std::isfinite(lp.at(0)));
  EXPECT_FLOAT_EQ(std::exp(lp.at(1)), 0.0f);  // masked entry underflows
}

TEST(GradCheck, GatherRows) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({4, 3}, rng, 1.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(gather_rows(v[0], {2, 0, 2}));
      },
      in);
}

TEST(GradCheck, GatherPerRow) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({3, 4}, rng, 1.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(gather_per_row(v[0], {1, 3, 0}));
      },
      in);
}

TEST(Ops, GatherValidatesIndices) {
  Tensor x = Tensor::ones({2, 2});
  EXPECT_THROW(gather_rows(x, {5}), std::invalid_argument);
  EXPECT_THROW(gather_per_row(x, {0, 7}), std::invalid_argument);
  EXPECT_THROW(gather_per_row(x, {0}), std::invalid_argument);
}

TEST(GradCheck, ReshapeConcat) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 3}, rng, 1.0f, true),
                         Tensor::randn({2, 2}, rng, 1.0f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(reshape(v[0], {3, 2}));
      },
      in);
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(square(concat_cols({v[0], v[1]})));
      },
      in);
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(square(concat_rows({reshape(v[0], {3, 2}), v[1]})));
      },
      in);
}

TEST(Ops, ConcatColsValues) {
  Tensor a = Tensor::from_vector({2, 1}, {1, 3});
  Tensor b = Tensor::from_vector({2, 2}, {4, 5, 6, 7});
  Tensor c = concat_cols({a, b});
  EXPECT_EQ(c.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(c.at(0), 1.0f);
  EXPECT_FLOAT_EQ(c.at(1), 4.0f);
  EXPECT_FLOAT_EQ(c.at(3), 3.0f);
  EXPECT_FLOAT_EQ(c.at(5), 7.0f);
}

TEST(GradCheck, Conv2d) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 2, 4, 4}, rng, 1.0f, true),
                         Tensor::randn({3, 2, 3, 3}, rng, 0.5f, true),
                         Tensor::randn({3}, rng, 0.5f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(square(conv2d(v[0], v[1], v[2], 1, 1)));
      },
      in, 5e-2f);
}

TEST(GradCheck, Conv2dStride2) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({1, 1, 5, 5}, rng, 1.0f, true),
                         Tensor::randn({2, 1, 3, 3}, rng, 0.5f, true),
                         Tensor::randn({2}, rng, 0.5f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(square(conv2d(v[0], v[1], v[2], 2, 1)));
      },
      in, 5e-2f);
}

TEST(Ops, Conv2dKnownValues) {
  // 1x1 input channel, 2x2 image, identity-ish kernel.
  Tensor x = Tensor::from_vector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor w = Tensor::from_vector({1, 1, 1, 1}, {2.0f});
  Tensor b = Tensor::from_vector({1}, {1.0f});
  Tensor y = conv2d(x, w, b, 1, 0);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(3), 9.0f);
}

TEST(GradCheck, ConvTranspose2d) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({1, 2, 3, 3}, rng, 1.0f, true),
                         Tensor::randn({2, 2, 4, 4}, rng, 0.3f, true),
                         Tensor::randn({2}, rng, 0.3f, true)};
  grad_check(
      [](std::vector<Tensor>& v) {
        return sum_all(square(conv_transpose2d(v[0], v[1], v[2], 2, 1)));
      },
      in, 5e-2f);
}

TEST(Ops, ConvTranspose2dUpsamples) {
  auto rng = rng_fixed();
  Tensor x = Tensor::randn({1, 3, 4, 4}, rng);
  Tensor w = Tensor::randn({3, 5, 4, 4}, rng);
  Tensor b = Tensor::zeros({5});
  Tensor y = conv_transpose2d(x, w, b, 2, 1);
  EXPECT_EQ(y.shape(), (Shape{1, 5, 8, 8}));
}

TEST(GradCheck, MseLoss) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({5}, rng, 1.0f, true)};
  Tensor target = Tensor::randn({5}, rng);
  grad_check(
      [target](std::vector<Tensor>& v) { return mse_loss(v[0], target); }, in);
}

TEST(Autograd, GradientAccumulatesAcrossBackwards) {
  Tensor a = Tensor::full({1}, 3.0f, true);
  mul_scalar(a, 2.0f).backward();
  mul_scalar(a, 2.0f).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 4.0f);
  a.zero_grad();
  EXPECT_FLOAT_EQ(a.grad()[0], 0.0f);
}

TEST(Autograd, DiamondGraph) {
  // f = (a*a) + (a*a); df/da = 4a.
  Tensor a = Tensor::full({1}, 3.0f, true);
  Tensor s = square(a);
  add(s, s).backward();
  EXPECT_FLOAT_EQ(a.grad()[0], 12.0f);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  Tensor w = Tensor::full({1}, 5.0f, true);
  SGD opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    square(w).backward();
    opt.step();
  }
  EXPECT_NEAR(w.item(), 0.0f, 1e-3f);
}

TEST(Optim, AdamConvergesOnLinearRegression) {
  auto rng = rng_fixed();
  // y = 2x + 1, 16 samples.
  Tensor x = Tensor::randn({16, 1}, rng);
  std::vector<float> yv(16);
  for (int i = 0; i < 16; ++i) yv[static_cast<std::size_t>(i)] = 2.0f * x.at(i) + 1.0f;
  Tensor y = Tensor::from_vector({16}, yv);
  Tensor w = Tensor::zeros({1, 1}, true);
  Tensor b = Tensor::zeros({1}, true);
  Adam opt({w, b}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    Tensor pred = reshape(linear(x, w, b), {16});
    mse_loss(pred, y).backward();
    opt.step();
  }
  EXPECT_NEAR(w.item(), 2.0f, 0.05f);
  EXPECT_NEAR(b.item(), 1.0f, 0.05f);
}

TEST(Optim, ClipGradNorm) {
  Tensor w = Tensor::full({4}, 1.0f, true);
  SGD opt({w}, 0.1f);
  opt.zero_grad();
  mul_scalar(sum_all(w), 100.0f).backward();  // grad = 100 each, norm 200
  const double norm = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(norm, 200.0, 1e-3);
  double clipped = 0.0;
  for (float g : w.grad()) clipped += static_cast<double>(g) * g;
  EXPECT_NEAR(std::sqrt(clipped), 1.0, 1e-4);
}

TEST(Serialize, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "afp_ckpt_test.bin").string();
  auto rng = rng_fixed();
  std::map<std::string, Tensor> m{
      {"a", Tensor::randn({2, 3}, rng)},
      {"b.weight", Tensor::randn({4}, rng)},
  };
  save_tensors(path, m);
  auto loaded = load_tensors(path);
  ASSERT_EQ(loaded.size(), 2u);
  for (const auto& [name, t] : m) {
    ASSERT_TRUE(loaded.count(name));
    ASSERT_EQ(loaded.at(name).shape(), t.shape());
    for (std::int64_t i = 0; i < t.size(); ++i) {
      EXPECT_FLOAT_EQ(loaded.at(name).at(i), t.at(i));
    }
  }
  std::map<std::string, Tensor> dst{{"a", Tensor::zeros({2, 3})},
                                    {"b.weight", Tensor::zeros({4})}};
  load_into(loaded, dst);
  EXPECT_FLOAT_EQ(dst.at("a").at(0), m.at("a").at(0));
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/nonexistent/path/ckpt.bin"),
               std::runtime_error);
}

TEST(Serialize, LoadIntoShapeMismatchThrows) {
  std::map<std::string, Tensor> src{{"a", Tensor::zeros({2})}};
  std::map<std::string, Tensor> dst{{"a", Tensor::zeros({3})}};
  EXPECT_THROW(load_into(src, dst), std::runtime_error);
}

}  // namespace
}  // namespace afp::num
