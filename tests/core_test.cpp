#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "netlist/library.hpp"

namespace afp::core {
namespace {

PipelineConfig quick_config() {
  PipelineConfig cfg;
  cfg.optimizer = "sa";
  cfg.options = {{"iterations", "300"}};
  cfg.rl_attempts = 2;
  return cfg;
}

TEST(MethodNames, AllDistinct) {
  std::set<std::string> names;
  for (Method m : {Method::kRgcnRl, Method::kSA, Method::kGA, Method::kPSO,
                   Method::kRlSa, Method::kRlSp}) {
    EXPECT_TRUE(names.insert(to_string(m)).second);
  }
}

TEST(Pipeline, PrepareBuildsInstance) {
  std::mt19937_64 rng(1);
  FloorplanPipeline pipe(quick_config());
  const auto prep = pipe.prepare(netlist::make_ota2(), rng);
  EXPECT_EQ(prep.instance.num_blocks(), 8);
  EXPECT_GT(prep.instance.hpwl_ref, 0.0);
  EXPECT_GT(prep.recognition_s, 0.0);
  EXPECT_TRUE(prep.instance.constraints.empty());
}

TEST(Pipeline, PrepareWithConstraints) {
  std::mt19937_64 rng(2);
  PipelineConfig cfg = quick_config();
  cfg.constrained = true;
  FloorplanPipeline pipe(cfg);
  const auto prep = pipe.prepare(netlist::make_ota2(), rng);
  EXPECT_FALSE(prep.instance.constraints.empty());
}

TEST(Pipeline, BaselineEndToEnd) {
  std::mt19937_64 rng(3);
  FloorplanPipeline pipe(quick_config());
  const auto res = pipe.run(netlist::make_ota_small(), Method::kSA, rng);
  EXPECT_EQ(res.rects.size(), 3u);
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
  EXPECT_EQ(res.route.failed_nets, 0);
  EXPECT_FALSE(res.layout.wires.empty());
  EXPECT_GT(res.timings.floorplan_s, 0.0);
  EXPECT_GT(res.timings.total(), 0.0);
  EXPECT_TRUE(std::isfinite(res.eval.reward));
}

TEST(Pipeline, RgcnRlMethodEnumRejectsBaselineOverload) {
  std::mt19937_64 rng(4);
  FloorplanPipeline pipe(quick_config());
  EXPECT_THROW(pipe.run(netlist::make_ota_small(), Method::kRgcnRl, rng),
               std::invalid_argument);
}

TEST(Pipeline, AgentEndToEnd) {
  std::mt19937_64 rng(5);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  FloorplanPipeline pipe(quick_config());
  const auto res = pipe.run(netlist::make_ota_small(), policy, encoder, rng);
  EXPECT_EQ(res.rects.size(), 3u);
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
  EXPECT_FALSE(res.layout.blocks.empty());
  // DRC and LVS reports exist (clean or not, they must be consistent).
  for (const auto& v : res.drc.violations) EXPECT_FALSE(v.rule.empty());
}

TEST(TrainOptions, Presets) {
  const auto fast = TrainOptions::fast(3);
  EXPECT_EQ(fast.seed, 3u);
  EXPECT_LT(fast.hcl.episodes_per_circuit, 100);
  const auto paper = TrainOptions::paper();
  EXPECT_EQ(paper.ppo.n_envs, 16);
  EXPECT_EQ(paper.hcl.episodes_per_circuit, 4096);
  EXPECT_EQ(paper.policy.feat_dim, 512);
}

TEST(TrainAgent, FastPresetTrainsEndToEnd) {
  TrainOptions opt = TrainOptions::fast(7);
  opt.hcl.circuits = {"ota_small", "bias_small"};
  opt.hcl.episodes_per_circuit = 4;
  const TrainedAgent agent = train_agent(opt);
  ASSERT_TRUE(agent.encoder);
  ASSERT_TRUE(agent.policy);
  EXPECT_FALSE(agent.rgcn_history.empty());
  EXPECT_FALSE(agent.rl_history.empty());
  EXPECT_EQ(agent.rl_history.size(), agent.stage_history.size());
  // The trained policy still produces valid floorplans.
  std::mt19937_64 rng(8);
  auto g = graphir::build_graph(netlist::make_ota1(),
                                structrec::recognize(netlist::make_ota1()));
  const auto task = rl::make_task(*agent.encoder, std::move(g));
  const auto ep = rl::run_episode(*agent.policy, task, rng);
  EXPECT_EQ(ep.rects.size(), 5u);
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(ep.rects), 0.0);
}

}  // namespace
}  // namespace afp::core
