#include "geom/geom.hpp"

#include <gtest/gtest.h>

namespace afp::geom {
namespace {

TEST(Point, Distances) {
  const Point a{0.0, 0.0}, b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(manhattan(a, b), 7.0);
  EXPECT_DOUBLE_EQ(euclidean(a, b), 5.0);
  EXPECT_DOUBLE_EQ(manhattan(a, a), 0.0);
}

TEST(Rect, Accessors) {
  const Rect r{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r.right(), 4.0);
  EXPECT_DOUBLE_EQ(r.top(), 6.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_EQ(r.center(), (Point{2.5, 4.0}));
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect{}.empty());
}

TEST(Rect, ContainsPointHalfOpen) {
  const Rect r{0.0, 0.0, 2.0, 2.0};
  EXPECT_TRUE(r.contains(Point{0.0, 0.0}));
  EXPECT_TRUE(r.contains(Point{1.99, 1.99}));
  EXPECT_FALSE(r.contains(Point{2.0, 1.0}));
  EXPECT_FALSE(r.contains(Point{1.0, 2.0}));
}

TEST(Rect, ContainsRect) {
  const Rect outer{0.0, 0.0, 10.0, 10.0};
  EXPECT_TRUE(outer.contains(Rect{1.0, 1.0, 2.0, 2.0}));
  EXPECT_TRUE(outer.contains(outer));
  EXPECT_FALSE(outer.contains(Rect{9.0, 9.0, 2.0, 2.0}));
}

TEST(Rect, OverlapsSharedEdgeDoesNotCount) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  EXPECT_TRUE(a.overlaps(Rect{1.0, 1.0, 2.0, 2.0}));
  EXPECT_FALSE(a.overlaps(Rect{2.0, 0.0, 2.0, 2.0}));  // abutting
  EXPECT_FALSE(a.overlaps(Rect{0.0, 2.0, 2.0, 2.0}));
  EXPECT_FALSE(a.overlaps(Rect{5.0, 5.0, 1.0, 1.0}));
}

TEST(Rect, TranslateInflate) {
  const Rect r{1.0, 1.0, 2.0, 2.0};
  EXPECT_EQ(r.translated(1.0, -1.0), (Rect{2.0, 0.0, 2.0, 2.0}));
  EXPECT_EQ(r.inflated(0.5), (Rect{0.5, 0.5, 3.0, 3.0}));
  EXPECT_TRUE(r.inflated(-1.5).empty());
}

TEST(Intersection, Basics) {
  const Rect a{0.0, 0.0, 4.0, 4.0};
  const Rect b{2.0, 2.0, 4.0, 4.0};
  EXPECT_EQ(intersection(a, b), (Rect{2.0, 2.0, 2.0, 2.0}));
  EXPECT_TRUE(intersection(a, Rect{10.0, 10.0, 1.0, 1.0}).empty());
}

TEST(BoundingBox, UnionAndSpan) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect b{3.0, 4.0, 1.0, 1.0};
  EXPECT_EQ(bounding_union(a, b), (Rect{0.0, 0.0, 4.0, 5.0}));
  const std::vector<Rect> rects{a, b};
  EXPECT_EQ(bounding_box(rects), (Rect{0.0, 0.0, 4.0, 5.0}));
  EXPECT_TRUE(bounding_box({}).empty());
}

TEST(BoundingBox, IgnoresEmptyRects) {
  const std::vector<Rect> rects{{0, 0, 0, 0}, {1, 1, 2, 2}};
  EXPECT_EQ(bounding_box(rects), (Rect{1, 1, 2, 2}));
}

TEST(Overlap, TotalPairwise) {
  const std::vector<Rect> rects{{0, 0, 2, 2}, {1, 1, 2, 2}, {10, 10, 1, 1}};
  EXPECT_DOUBLE_EQ(total_pairwise_overlap(rects), 1.0);
}

TEST(Hpwl, SingleNet) {
  const std::vector<Point> pins{{0, 0}, {3, 4}, {1, 1}};
  EXPECT_DOUBLE_EQ(hpwl_net(pins), 7.0);
  EXPECT_DOUBLE_EQ(hpwl_net(std::vector<Point>{{1, 1}}), 0.0);
}

TEST(Hpwl, Total) {
  const std::vector<std::vector<Point>> nets{{{0, 0}, {1, 1}},
                                             {{0, 0}, {2, 0}}};
  EXPECT_DOUBLE_EQ(hpwl_total(nets), 4.0);
}

TEST(DeadSpace, PerfectPackingIsZero) {
  const std::vector<Rect> rects{{0, 0, 1, 2}, {1, 0, 1, 2}};
  EXPECT_NEAR(dead_space(rects), 0.0, 1e-12);
}

TEST(DeadSpace, HalfEmpty) {
  const std::vector<Rect> rects{{0, 0, 1, 1}, {1, 1, 1, 1}};
  EXPECT_NEAR(dead_space(rects), 0.5, 1e-12);
}

TEST(AspectRatio, AlwaysAtLeastOne) {
  EXPECT_DOUBLE_EQ(aspect_ratio(Rect{0, 0, 4, 2}), 2.0);
  EXPECT_DOUBLE_EQ(aspect_ratio(Rect{0, 0, 2, 4}), 2.0);
  EXPECT_TRUE(std::isinf(aspect_ratio(Rect{0, 0, 0, 4})));
}

TEST(Interval, Intersect) {
  EXPECT_EQ(intersect({0, 5}, {3, 8}), (Interval{3, 5}));
  EXPECT_FALSE(intersect({0, 1}, {2, 3}).valid());
}

TEST(GridMapper, CeilQuantization) {
  // Paper Section IV-D1: wg = ceil(w * 32 / W).
  const GridMapper m{32.0, 32.0, 32};
  EXPECT_EQ(m.cells_w(1.0), 1);
  EXPECT_EQ(m.cells_w(1.01), 2);
  EXPECT_EQ(m.cells_w(0.0), 1);  // blocks never vanish
  EXPECT_EQ(m.cells_h(32.0), 32);
}

TEST(GridMapper, WorldCoordinates) {
  const GridMapper m{64.0, 32.0, 32};
  EXPECT_DOUBLE_EQ(m.world_x(1), 2.0);
  EXPECT_DOUBLE_EQ(m.world_y(1), 1.0);
  EXPECT_EQ(m.cell_of(3.9, 0.9), (Cell{1, 0}));
  EXPECT_EQ(m.cell_of(1000.0, -5.0), (Cell{31, 0}));  // clamped
}

TEST(CanvasSide, FitsElongatedFloorplans) {
  // A floorplan with aspect ratio Rmax and total area A has long side
  // sqrt(A * Rmax); the canvas must cover it.
  const double side = canvas_side(100.0, 11.0);
  EXPECT_NEAR(side, std::sqrt(1100.0), 1e-12);
  EXPECT_GE(side, std::sqrt(100.0));
}

}  // namespace
}  // namespace afp::geom
