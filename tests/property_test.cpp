// Property-based and parameterized sweeps across modules: invariants that
// must hold for every circuit in the registry, both constraint settings,
// and randomized inputs.
#include <gtest/gtest.h>

#include "env/env.hpp"
#include "metaheur/baselines.hpp"
#include "netlist/library.hpp"
#include "route/oarsmt.hpp"

namespace afp {
namespace {

struct CircuitParam {
  std::string name;
  bool constrained;
};

std::string param_name(const ::testing::TestParamInfo<CircuitParam>& info) {
  return info.param.name + (info.param.constrained ? "_constrained" : "_free");
}

std::vector<CircuitParam> all_params() {
  std::vector<CircuitParam> out;
  for (const auto& e : netlist::circuit_registry()) {
    out.push_back({e.name, false});
    out.push_back({e.name, true});
  }
  return out;
}

floorplan::Instance instance_of(const CircuitParam& p) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == p.name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  if (p.constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  }
  return floorplan::make_instance(g);
}

// ---------------------------------------------------------------- grid ---

class GridProperty : public ::testing::TestWithParam<CircuitParam> {};

TEST_P(GridProperty, MaskFollowingEpisodesAreSound) {
  // For every circuit and constraint setting: following the position mask
  // either completes the floorplan (then: no overlaps, inside canvas,
  // constraints satisfied) or dead-ends (then: some earlier choice closed
  // the space — still sound, the env charges -50).
  const auto inst = instance_of(GetParam());
  floorplan::GridFloorplan fp(inst, 32);
  bool dead_end = false;
  for (int b : inst.placement_order()) {
    const auto mask = fp.position_mask(b, 1);
    int cell = -1;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] > 0.5f) {
        cell = static_cast<int>(i);
        break;
      }
    }
    if (cell < 0) {
      dead_end = true;
      break;
    }
    fp.place(b, 1, cell % 32, cell / 32);
  }
  if (dead_end) {
    SUCCEED();
    return;
  }
  ASSERT_TRUE(fp.complete());
  const auto rects = fp.rects();
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0);
  for (const auto& r : rects) {
    EXPECT_GE(r.x, -1e-9);
    EXPECT_GE(r.y, -1e-9);
    EXPECT_LE(r.right(), inst.canvas_w + 1e-9);
    EXPECT_LE(r.top(), inst.canvas_h + 1e-9);
  }
  // Symmetry is exact (block centers coincide with grid centers);
  // alignment is exact at grid granularity, i.e. within half a cell.
  const double tol = inst.canvas_w / 32.0 / 2.0 + 1e-9;
  EXPECT_TRUE(floorplan::constraints_satisfied(inst, rects, tol));
}

TEST_P(GridProperty, PositionMaskAgreesWithValid) {
  const auto inst = instance_of(GetParam());
  floorplan::GridFloorplan fp(inst, 32);
  // Place the first two blocks, then cross-check mask vs valid() for the
  // third on a sampled grid subset (full 3x1024 check per shape is cheap
  // enough for small circuits; sample for big ones).
  const auto order = inst.placement_order();
  for (int k = 0; k < 2 && k < static_cast<int>(order.size()); ++k) {
    const int b = order[static_cast<std::size_t>(k)];
    const auto mask = fp.position_mask(b, 0);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] > 0.5f) {
        fp.place(b, 0, static_cast<int>(i) % 32, static_cast<int>(i) / 32);
        break;
      }
    }
  }
  if (static_cast<int>(order.size()) < 3) return;
  const int b = order[2];
  for (int s = 0; s < floorplan::kNumShapes; ++s) {
    const auto mask = fp.position_mask(b, s);
    for (int row = 0; row < 32; row += 3) {
      for (int col = 0; col < 32; col += 3) {
        EXPECT_EQ(mask[static_cast<std::size_t>(row) * 32 + col] > 0.5f,
                  fp.valid(b, s, col, row))
            << "shape " << s << " cell (" << col << "," << row << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, GridProperty,
                         ::testing::ValuesIn(all_params()), param_name);

// ----------------------------------------------------------------- env ---

class EnvProperty : public ::testing::TestWithParam<CircuitParam> {};

TEST_P(EnvProperty, IntermediateRewardsTelescope) {
  // Eq. (4) rewards telescope: the sum of the per-step terms equals
  // -(final dead space + final HPWL / (W + H)); the terminal step adds the
  // Eq. (5) reward on top.
  const auto inst = instance_of(GetParam());
  env::FloorplanEnv environment(inst);
  auto obs = environment.reset();
  double sum = 0.0;
  env::StepResult last;
  while (!obs.done) {
    int a = -1;
    for (std::size_t i = 0; i < obs.action_mask.size(); ++i) {
      if (obs.action_mask[i] > 0.5f) {
        a = static_cast<int>(i);
        break;
      }
    }
    if (a < 0) return;  // constrained dead end: nothing to check
    last = environment.step(a);
    sum += last.reward;
    obs = last.obs;
  }
  if (last.violated || !last.final_eval) return;
  const auto& grid = environment.grid();
  const double expected_partial =
      -(grid.partial_dead_space() +
        grid.partial_hpwl() / (inst.canvas_w + inst.canvas_h));
  EXPECT_NEAR(sum, expected_partial + last.final_eval->reward, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, EnvProperty,
                         ::testing::ValuesIn(all_params()), param_name);

// ------------------------------------------------------------- seq pair ---

class SequencePairProperty : public ::testing::TestWithParam<CircuitParam> {};

TEST_P(SequencePairProperty, RandomPackingsAreAlwaysLegal) {
  const auto inst = instance_of(GetParam());
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sp = metaheur::SequencePair::random(inst.num_blocks(), rng);
    for (double spacing : {0.0, 0.7}) {
      const auto rects = metaheur::pack(inst, sp, spacing);
      ASSERT_EQ(static_cast<int>(rects.size()), inst.num_blocks());
      EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0);
      for (const auto& r : rects) {
        EXPECT_GE(r.x, -1e-9);
        EXPECT_GE(r.y, -1e-9);
      }
    }
  }
}

TEST_P(SequencePairProperty, PackRespectsOrderingRelations) {
  // a before b in both sequences -> a strictly left of b (no x overlap of
  // padded slots); a before b in s1, after in s2 -> a above b.
  const auto inst = instance_of(GetParam());
  if (inst.num_blocks() < 2) return;
  std::mt19937_64 rng(7);
  const auto sp = metaheur::SequencePair::random(inst.num_blocks(), rng);
  const auto rects = metaheur::pack(inst, sp, 0.0);
  std::vector<int> pos1(rects.size()), pos2(rects.size());
  for (std::size_t i = 0; i < rects.size(); ++i) {
    pos1[static_cast<std::size_t>(sp.s1[i])] = static_cast<int>(i);
    pos2[static_cast<std::size_t>(sp.s2[i])] = static_cast<int>(i);
  }
  for (int a = 0; a < inst.num_blocks(); ++a) {
    for (int b = 0; b < inst.num_blocks(); ++b) {
      if (a == b) continue;
      if (pos1[static_cast<std::size_t>(a)] < pos1[static_cast<std::size_t>(b)] &&
          pos2[static_cast<std::size_t>(a)] < pos2[static_cast<std::size_t>(b)]) {
        EXPECT_LE(rects[static_cast<std::size_t>(a)].right(),
                  rects[static_cast<std::size_t>(b)].x + 1e-9)
            << "blocks " << a << "," << b;
      }
      if (pos1[static_cast<std::size_t>(a)] < pos1[static_cast<std::size_t>(b)] &&
          pos2[static_cast<std::size_t>(a)] > pos2[static_cast<std::size_t>(b)]) {
        EXPECT_GE(rects[static_cast<std::size_t>(a)].y,
                  rects[static_cast<std::size_t>(b)].top() - 1e-9)
            << "blocks " << a << "," << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, SequencePairProperty,
                         ::testing::ValuesIn(all_params()), param_name);

// ----------------------------------------------------------------- route ---

TEST(RouteProperty, TreeLengthBoundedBelowByHpwl) {
  // The OARSMT length is at least the net's HPWL (a Steiner lower bound
  // relaxation) and, without obstacles, at most the star wirelength.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> unif(0.0, 50.0);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<geom::Point> pins;
    const int n = 2 + trial % 5;
    for (int i = 0; i < n; ++i) pins.push_back({unif(rng), unif(rng)});
    const auto tree = route::route_net(pins, {});
    const double hp = geom::hpwl_net(pins);
    EXPECT_GE(tree.length(), hp - 1e-6) << "trial " << trial;
    double star = 0.0;
    for (std::size_t i = 1; i < pins.size(); ++i) {
      star += geom::manhattan(pins[0], pins[i]);
    }
    EXPECT_LE(tree.length(), star + 1e-6) << "trial " << trial;
  }
}

TEST(RouteProperty, ObstacleRoutesAvoidAndStayBounded) {
  // With an obstacle the heuristic tree (a) never crosses it, (b) stays at
  // or above the HPWL lower bound.  Note: strict length monotonicity vs
  // the obstacle-free tree does NOT hold for a greedy Steiner heuristic —
  // obstacle edges enrich the escape grid with extra Steiner candidates.
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> unif(0.0, 40.0);
  const geom::Rect obstacle{15.0, 15.0, 6.0, 6.0};
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<geom::Point> pins{{unif(rng), unif(rng)},
                                        {unif(rng), unif(rng)},
                                        {unif(rng), unif(rng)}};
    bool clear = true;
    for (const auto& p : pins) {
      clear = clear && !obstacle.inflated(0.2).contains(p);
    }
    if (!clear) continue;
    const auto tree = route::route_net(pins, {{obstacle}});
    EXPECT_GE(tree.length(), geom::hpwl_net(pins) - 1e-6);
    const geom::Rect core = obstacle.inflated(-0.1);
    for (const auto& [a, b] : tree.edges) {
      const auto pa = tree.nodes[static_cast<std::size_t>(a)];
      const auto pb = tree.nodes[static_cast<std::size_t>(b)];
      const geom::Point mid{(pa.x + pb.x) / 2.0, (pa.y + pb.y) / 2.0};
      EXPECT_FALSE(core.contains(mid)) << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------- reward ---

TEST(RewardProperty, EvaluationMonotoneInPacking) {
  // Spreading any floorplan strictly apart can only lower the reward.
  std::mt19937_64 rng(5);
  for (const auto& e : netlist::circuit_registry()) {
    const auto inst = instance_of({e.name, false});
    const auto sp = metaheur::SequencePair::random(inst.num_blocks(), rng);
    const auto tight = metaheur::pack(inst, sp, 0.0);
    const auto spread = metaheur::pack(inst, sp, 2.0);
    const auto ev_tight = floorplan::evaluate_floorplan(inst, tight);
    const auto ev_spread = floorplan::evaluate_floorplan(inst, spread);
    EXPECT_GE(ev_tight.reward, ev_spread.reward - 1e-9) << e.name;
  }
}

}  // namespace
}  // namespace afp
