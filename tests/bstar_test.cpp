// Tests for the B*-tree representation and its SA baseline.
#include <gtest/gtest.h>

#include "metaheur/bstar.hpp"
#include "netlist/library.hpp"

namespace afp::metaheur {
namespace {

floorplan::Instance instance_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

TEST(BStarTree, RandomTreesAreValid) {
  std::mt19937_64 rng(1);
  for (int n : {1, 2, 5, 9, 19}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto t = BStarTree::random(n, rng);
      EXPECT_TRUE(t.valid()) << "n=" << n;
      EXPECT_EQ(t.size(), n);
    }
  }
}

TEST(BStarTree, PackNeverOverlapsAndIsCompacted) {
  std::mt19937_64 rng(2);
  const auto inst = instance_of("bias2");
  for (int trial = 0; trial < 30; ++trial) {
    const auto t = BStarTree::random(inst.num_blocks(), rng);
    const auto rects = pack_bstar(inst, t);
    ASSERT_EQ(static_cast<int>(rects.size()), inst.num_blocks());
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0);
    // Left/bottom compaction: the bounding box touches both axes.
    const auto bb = geom::bounding_box(rects);
    EXPECT_NEAR(bb.x, 0.0, 1e-9);
    EXPECT_NEAR(bb.y, 0.0, 1e-9);
  }
}

TEST(BStarTree, LeftChildPacksToTheRight) {
  // Hand-built 2-node tree: left child abuts the parent's right edge.
  auto inst = instance_of("ota_small");
  BStarTree t;
  t.left = {1, -1, -1};
  t.right = {-1, -1, -1};
  t.parent = {-1, 0, -1};
  t.root = 0;
  t.shapes = {1, 1, 1};
  // Attach block 2 as right child of block 0 (stacks above).
  t.right[0] = 2;
  t.parent[2] = 0;
  ASSERT_TRUE(t.valid());
  const auto rects = pack_bstar(inst, t);
  EXPECT_NEAR(rects[1].x, rects[0].right(), 1e-9);
  EXPECT_NEAR(rects[1].y, 0.0, 1e-9);
  EXPECT_NEAR(rects[2].x, rects[0].x, 1e-9);
  EXPECT_GE(rects[2].y, rects[0].top() - 1e-9);
}

TEST(BStarTree, SpacingPadsSlots) {
  std::mt19937_64 rng(3);
  const auto inst = instance_of("ota1");
  const auto t = BStarTree::random(inst.num_blocks(), rng);
  const auto tight = pack_bstar(inst, t, 0.0);
  const auto spaced = pack_bstar(inst, t, 1.0);
  EXPECT_GT(geom::bounding_box(spaced).area(),
            geom::bounding_box(tight).area());
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_DOUBLE_EQ(tight[i].w, spaced[i].w);
  }
}

class BStarMoveSuite : public ::testing::TestWithParam<BStarMove> {};

TEST_P(BStarMoveSuite, MovesPreserveValidity) {
  std::mt19937_64 rng(4);
  const auto inst = instance_of("driver");
  BStarTree t = BStarTree::random(inst.num_blocks(), rng);
  for (int k = 0; k < 100; ++k) {
    apply_bstar_move(t, GetParam(), rng);
    ASSERT_TRUE(t.valid()) << "after move " << k;
    const auto rects = pack_bstar(inst, t);
    ASSERT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMoves, BStarMoveSuite,
    ::testing::Values(BStarMove::kChangeShape, BStarMove::kSwapBlocks,
                      BStarMove::kMoveLeaf),
    [](const ::testing::TestParamInfo<BStarMove>& info) {
      switch (info.param) {
        case BStarMove::kChangeShape: return std::string("shape");
        case BStarMove::kSwapBlocks: return std::string("swap");
        default: return std::string("move_leaf");
      }
    });

TEST(BStarSa, ProducesCompetitiveFloorplans) {
  std::mt19937_64 rng(5);
  const auto inst = instance_of("ota2");
  BStarSAParams p;
  p.iterations = 1500;
  const auto res = run_sa_bstar(inst, p, rng);
  EXPECT_EQ(res.method, "SA-B*[15]");
  EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
  EXPECT_LT(res.eval.dead_space, 0.75);
  EXPECT_GT(res.evaluations, 1000);
  // Better than a random tree.
  const auto rand_cost =
      sp_cost(inst, pack_bstar(inst, BStarTree::random(inst.num_blocks(), rng),
                               inst.canvas_w / 32.0));
  EXPECT_LT(sp_cost(inst, res.rects), rand_cost);
}

TEST(BStarSa, SmallInstance) {
  std::mt19937_64 rng(6);
  const auto inst = instance_of("bias_small");
  BStarSAParams p;
  p.iterations = 300;
  const auto res = run_sa_bstar(inst, p, rng);
  EXPECT_EQ(static_cast<int>(res.rects.size()), inst.num_blocks());
  EXPECT_TRUE(res.eval.constraints_ok);
}

}  // namespace
}  // namespace afp::metaheur
