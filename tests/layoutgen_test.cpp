#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "layoutgen/layoutgen.hpp"
#include "netlist/library.hpp"

namespace afp::layoutgen {
namespace {

struct Fixture {
  floorplan::Instance inst;
  std::vector<geom::Rect> rects;
  route::GlobalRoute gr;
};

Fixture fixture_of(const std::string& name, double gap = 2.0) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  Fixture f;
  f.inst = floorplan::make_instance(g);
  double x = 0.0;
  for (const auto& b : f.inst.blocks) {
    f.rects.push_back({x, 0.0, b.shapes[1].w, b.shapes[1].h});
    x += b.shapes[1].w + gap;
  }
  f.gr = route::global_route(f.inst, f.rects);
  return f;
}

TEST(GenerateLayout, StagesProduceGeometry) {
  const auto f = fixture_of("ota_small");
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  EXPECT_EQ(layout.blocks.size(), f.rects.size());
  EXPECT_FALSE(layout.pins.empty());
  EXPECT_FALSE(layout.channels.empty());
  EXPECT_FALSE(layout.wires.empty());
  EXPECT_FALSE(layout.vias.empty());
  EXPECT_GT(layout.area(), 0.0);
  // Outline covers every block and wire.
  for (const auto& b : layout.blocks) {
    EXPECT_TRUE(layout.outline.contains(b));
  }
}

TEST(GenerateLayout, DeadSpaceConsistentWithOutline) {
  const auto f = fixture_of("ota1");
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  const double ds = layout.dead_space(f.inst);
  EXPECT_GT(ds, 0.0);
  EXPECT_LT(ds, 1.0);
  EXPECT_NEAR(ds, 1.0 - f.inst.total_block_area() / layout.area(), 1e-9);
}

TEST(GenerateLayout, WiresFollowConduitLayers) {
  const auto f = fixture_of("ota_small");
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  ASSERT_EQ(layout.wires.size(), f.gr.conduits.size());
  for (std::size_t i = 0; i < layout.wires.size(); ++i) {
    EXPECT_EQ(layout.wires[i].layer, f.gr.conduits[i].layer);
    EXPECT_EQ(layout.wires[i].net, f.gr.conduits[i].net);
  }
}

TEST(Drc, CleanOnWellSpacedLayout) {
  const auto f = fixture_of("ota_small", 4.0);
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  const DrcReport report = run_drc(layout);
  EXPECT_TRUE(report.clean())
      << (report.violations.empty() ? "" : report.violations[0].detail);
}

TEST(Drc, DetectsBlockOverlap) {
  auto f = fixture_of("ota_small");
  Layout layout = generate_layout(f.inst, f.rects, f.gr);
  layout.blocks[1] = layout.blocks[0];  // force overlap
  const DrcReport report = run_drc(layout);
  EXPECT_FALSE(report.clean());
  bool found = false;
  for (const auto& v : report.violations) found |= v.rule == "block_overlap";
  EXPECT_TRUE(found);
}

TEST(Drc, DetectsSpacingViolation) {
  Layout layout;
  layout.outline = {0, 0, 100, 100};
  layout.wires.push_back({{10, 10, 5, 0.2}, 1, "a"});
  layout.wires.push_back({{10, 10.25, 5, 0.2}, 1, "b"});  // too close
  const DrcReport report = run_drc(layout);
  EXPECT_FALSE(report.clean());
}

TEST(Drc, SameNetWiresMayTouch) {
  Layout layout;
  layout.outline = {0, 0, 100, 100};
  layout.wires.push_back({{10, 10, 5, 0.2}, 1, "a"});
  layout.wires.push_back({{10, 10.1, 5, 0.2}, 1, "a"});
  EXPECT_TRUE(run_drc(layout).clean());
}

TEST(Lvs, CleanOnGeneratedLayout) {
  const auto f = fixture_of("ota_small", 4.0);
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  const LvsReport report = run_lvs(layout);
  EXPECT_TRUE(report.shorted.empty());
}

TEST(Lvs, DetectsOpenNet) {
  Layout layout;
  layout.outline = {0, 0, 100, 100};
  layout.wires.push_back({{0, 0, 5, 0.2}, 1, "a"});
  layout.wires.push_back({{50, 50, 5, 0.2}, 1, "a"});  // disconnected piece
  const LvsReport report = run_lvs(layout);
  ASSERT_EQ(report.open_nets.size(), 1u);
  EXPECT_EQ(report.open_nets[0], "a");
}

TEST(Lvs, DetectsShort) {
  Layout layout;
  layout.outline = {0, 0, 100, 100};
  layout.wires.push_back({{0, 0, 5, 0.5}, 1, "a"});
  layout.wires.push_back({{2, 0, 5, 0.5}, 1, "b"});  // overlapping other net
  const LvsReport report = run_lvs(layout);
  EXPECT_FALSE(report.shorted.empty());
}

TEST(Svg, WritesWellFormedFile) {
  const auto f = fixture_of("ota_small");
  const Layout layout = generate_layout(f.inst, f.rects, f.gr);
  const std::string path =
      (std::filesystem::temp_directory_path() / "afp_layout_test.svg").string();
  write_svg(path, layout);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string content((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("</svg>"), std::string::npos);
  EXPECT_GT(std::count(content.begin(), content.end(), '\n'),
            static_cast<long>(layout.blocks.size()));
  std::filesystem::remove(path);
}

TEST(Svg, InvalidPathThrows) {
  Layout layout;
  layout.outline = {0, 0, 10, 10};
  EXPECT_THROW(write_svg("/nonexistent_dir/x.svg", layout),
               std::runtime_error);
}

}  // namespace
}  // namespace afp::layoutgen
