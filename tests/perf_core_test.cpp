// Parity and determinism tests for the performance core: the blocked GEMM,
// im2col convolutions and CSR SpMM must agree with the scalar reference
// kernels (forward AND backward) within 1e-4, and results must be
// identical for any thread-pool size.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "nn/rgcn_layer.hpp"
#include "numeric/ops.hpp"
#include "numeric/parallel.hpp"
#include "numeric/scratch.hpp"
#include "numeric/sparse.hpp"
#include "numeric/tensor.hpp"

namespace afp::num {
namespace {

constexpr float kTol = 1e-4f;

/// Forward values + per-input gradients of a scalar-producing graph.
struct Eval {
  std::vector<float> out;                ///< forward value of fn's result
  std::vector<std::vector<float>> grads;  ///< one per input
};

Eval evaluate(const std::function<Tensor(std::vector<Tensor>&)>& fn,
              std::vector<Tensor> inputs) {
  for (auto& t : inputs) t.zero_grad();
  Tensor out = fn(inputs);
  Tensor loss = sum_all(square(out));
  loss.backward();
  Eval e;
  e.out = out.values();
  for (auto& t : inputs) e.grads.push_back(t.grad());
  return e;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float bound = kTol * std::max(1.0f, std::abs(a[i]));
    EXPECT_NEAR(a[i], b[i], bound) << what << " at " << i;
  }
}

/// Runs the graph twice — reference kernels vs fast kernels — on identical
/// inputs and requires matching forward values and gradients.
void parity_check(const std::function<Tensor(std::vector<Tensor>&)>& fn,
                  const std::vector<Tensor>& inputs) {
  set_naive_kernels(true);
  const Eval ref = evaluate(fn, inputs);
  set_naive_kernels(false);
  const Eval fast = evaluate(fn, inputs);
  expect_close(ref.out, fast.out, "forward");
  for (std::size_t i = 0; i < ref.grads.size(); ++i) {
    expect_close(ref.grads[i], fast.grads[i],
                 ("grad of input " + std::to_string(i)).c_str());
  }
}

std::mt19937_64 rng_fixed() { return std::mt19937_64(1234); }

TEST(GemmParity, RandomizedShapes) {
  auto rng = rng_fixed();
  const int shapes[][3] = {
      {1, 1, 1}, {2, 3, 4}, {5, 1, 8}, {17, 31, 13}, {64, 48, 80}, {33, 128, 7},
  };
  for (const auto& s : shapes) {
    std::vector<Tensor> in{Tensor::randn({s[0], s[1]}, rng, 1.0f, true),
                           Tensor::randn({s[1], s[2]}, rng, 1.0f, true)};
    parity_check(
        [](std::vector<Tensor>& v) { return matmul(v[0], v[1]); }, in);
  }
}

TEST(GemmParity, LinearLayer) {
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({12, 40}, rng, 1.0f, true),
                         Tensor::randn({40, 24}, rng, 0.5f, true),
                         Tensor::randn({24}, rng, 0.5f, true)};
  parity_check(
      [](std::vector<Tensor>& v) { return linear(v[0], v[1], v[2]); }, in);
}

TEST(ConvParity, PolicyTrunkShapes) {
  // The policy CNN trunk: 3x3 convs over the 32x32 mask planes.
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 6, 32, 32}, rng, 1.0f, true),
                         Tensor::randn({8, 6, 3, 3}, rng, 0.3f, true),
                         Tensor::randn({8}, rng, 0.3f, true)};
  parity_check(
      [](std::vector<Tensor>& v) { return conv2d(v[0], v[1], v[2], 2, 1); },
      in);
  parity_check(
      [](std::vector<Tensor>& v) { return conv2d(v[0], v[1], v[2], 1, 1); },
      in);
}

TEST(ConvParity, RandomizedShapes) {
  auto rng = rng_fixed();
  struct Case { int b, ic, h, w, oc, k, stride, pad; };
  const Case cases[] = {
      {1, 1, 5, 5, 2, 3, 1, 0},
      {3, 2, 7, 9, 4, 3, 2, 1},
      {2, 3, 8, 8, 5, 5, 1, 2},
      {1, 4, 6, 6, 3, 1, 1, 0},
  };
  for (const auto& c : cases) {
    std::vector<Tensor> in{
        Tensor::randn({c.b, c.ic, c.h, c.w}, rng, 1.0f, true),
        Tensor::randn({c.oc, c.ic, c.k, c.k}, rng, 0.4f, true),
        Tensor::randn({c.oc}, rng, 0.4f, true)};
    parity_check(
        [c](std::vector<Tensor>& v) {
          return conv2d(v[0], v[1], v[2], c.stride, c.pad);
        },
        in);
  }
}

TEST(ConvParity, DeconvPolicyHeadShapes) {
  // The deconvolutional policy head: 4x4 stride-2 upsampling chain.
  auto rng = rng_fixed();
  std::vector<Tensor> in{Tensor::randn({2, 8, 4, 4}, rng, 1.0f, true),
                         Tensor::randn({8, 4, 4, 4}, rng, 0.3f, true),
                         Tensor::randn({4}, rng, 0.3f, true)};
  parity_check(
      [](std::vector<Tensor>& v) {
        return conv_transpose2d(v[0], v[1], v[2], 2, 1);
      },
      in);
}

TEST(ConvParity, DeconvRandomizedShapes) {
  auto rng = rng_fixed();
  struct Case { int b, ic, h, w, oc, k, stride, pad; };
  const Case cases[] = {
      {1, 2, 3, 3, 2, 4, 2, 1},
      {2, 3, 5, 4, 4, 3, 1, 0},
      {3, 1, 4, 6, 2, 5, 2, 2},
  };
  for (const auto& c : cases) {
    std::vector<Tensor> in{
        Tensor::randn({c.b, c.ic, c.h, c.w}, rng, 1.0f, true),
        Tensor::randn({c.ic, c.oc, c.k, c.k}, rng, 0.4f, true),
        Tensor::randn({c.oc}, rng, 0.4f, true)};
    parity_check(
        [c](std::vector<Tensor>& v) {
          return conv_transpose2d(v[0], v[1], v[2], c.stride, c.pad);
        },
        in);
  }
}

TEST(SparseCSR, FromCooAndLookup) {
  auto m = SparseCSR::from_coo(3, 4, {{0, 1, 2.0f}, {2, 3, 1.5f}, {0, 1, 1.0f}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 2);  // duplicates summed
  EXPECT_FLOAT_EQ(m.at(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(m.at(2, 3), 1.5f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.0f);
  EXPECT_THROW(SparseCSR::from_coo(2, 2, {{0, 5, 1.0f}}),
               std::invalid_argument);
}

TEST(SparseCSR, TransposeRoundTrip) {
  auto rng = rng_fixed();
  std::uniform_real_distribution<float> unif(0.0f, 1.0f);
  std::vector<std::tuple<int, int, float>> coo;
  for (int r = 0; r < 20; ++r)
    for (int c = 0; c < 15; ++c)
      if (unif(rng) < 0.15f) coo.emplace_back(r, c, unif(rng));
  const auto a = SparseCSR::from_coo(20, 15, coo);
  const auto att = a.transpose().transpose();
  const auto d1 = a.to_dense(), d2 = att.to_dense();
  for (std::int64_t i = 0; i < d1.size(); ++i)
    EXPECT_FLOAT_EQ(d1.at(i), d2.at(i));
}

TEST(Spmm, MatchesDenseMatmulForwardAndBackward) {
  auto rng = rng_fixed();
  std::uniform_real_distribution<float> unif(0.0f, 1.0f);
  const int n = 40, d = 8;
  std::vector<std::tuple<int, int, float>> coo;
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      if (unif(rng) < 0.1f) coo.emplace_back(r, c, unif(rng));
  const SparseCSR a = SparseCSR::from_coo(n, n, coo);
  const Tensor a_dense = a.to_dense();

  const Tensor h0 = Tensor::randn({n, d}, rng, 1.0f, true);
  const Eval sparse = evaluate(
      [&a](std::vector<Tensor>& v) { return spmm(a, v[0]); }, {h0});
  const Eval dense = evaluate(
      [&a_dense](std::vector<Tensor>& v) { return matmul(a_dense, v[0]); },
      {h0});
  expect_close(dense.out, sparse.out, "spmm forward");
  expect_close(dense.grads[0], sparse.grads[0], "spmm grad");
}

TEST(Spmm, ValidatesShapes) {
  const auto a = SparseCSR::from_coo(2, 3, {{0, 0, 1.0f}});
  EXPECT_THROW(spmm(a, Tensor::ones({2, 4})), std::invalid_argument);
}

TEST(BuildAdjacencyCsr, MatchesDenseBuilder) {
  const std::vector<std::vector<std::pair<int, int>>> edges = {
      {{0, 1}, {1, 2}, {1, 2}, {3, 3}},  // duplicates + self-loop
      {},
      {{4, 0}, {2, 4}},
  };
  const auto dense = nn::build_adjacency(5, 3, edges);
  const auto csr = nn::build_adjacency_csr(5, 3, edges);
  ASSERT_EQ(dense.size(), csr.size());
  for (std::size_t r = 0; r < dense.size(); ++r) {
    const Tensor d = csr[r].to_dense();
    ASSERT_EQ(d.shape(), dense[r].shape());
    for (std::int64_t i = 0; i < d.size(); ++i)
      EXPECT_FLOAT_EQ(d.at(i), dense[r].at(i)) << "relation " << r;
  }
}

TEST(RGCNLayer, SparseForwardMatchesDense) {
  auto rng = rng_fixed();
  nn::RGCNLayer layer(6, 8, 3, nn::Activation::kTanh, rng);
  const std::vector<std::vector<std::pair<int, int>>> edges = {
      {{0, 1}, {1, 2}}, {{2, 3}}, {}};
  const Tensor h = Tensor::randn({4, 6}, rng);
  const Tensor out_d = layer.forward(h, nn::build_adjacency(4, 3, edges));
  const Tensor out_s = layer.forward(h, nn::build_adjacency_csr(4, 3, edges));
  ASSERT_EQ(out_d.shape(), out_s.shape());
  for (std::int64_t i = 0; i < out_d.size(); ++i)
    EXPECT_NEAR(out_d.at(i), out_s.at(i), kTol);
}

TEST(Determinism, IdenticalAcrossThreadCounts) {
  // Bitwise-identical forward values and gradients for 1 vs 4 threads:
  // every output element is accumulated by exactly one chunk in a fixed
  // order regardless of the pool size.
  auto make_inputs = [] {
    auto rng = rng_fixed();
    return std::vector<Tensor>{
        Tensor::randn({48, 40}, rng, 1.0f, true),
        Tensor::randn({40, 56}, rng, 1.0f, true),
        Tensor::randn({2, 6, 32, 32}, rng, 1.0f, true),
        Tensor::randn({8, 6, 3, 3}, rng, 0.3f, true),
        Tensor::randn({8}, rng, 0.3f, true),
    };
  };
  auto graph = [](std::vector<Tensor>& v) {
    Tensor mm = matmul(v[0], v[1]);
    Tensor cv = conv2d(v[2], v[3], v[4], 2, 1);
    return add(sum_all(square(mm)), sum_all(square(cv)));
  };
  auto run = [&](int threads) {
    set_num_threads(threads);
    auto in = make_inputs();
    for (auto& t : in) t.zero_grad();
    graph(in).backward();
    std::vector<std::vector<float>> grads;
    for (auto& t : in) grads.push_back(t.grad());
    return grads;
  };
  const auto g1 = run(1);
  const auto g4 = run(4);
  set_num_threads(0);  // restore the ambient default
  ASSERT_EQ(g1.size(), g4.size());
  for (std::size_t t = 0; t < g1.size(); ++t) {
    ASSERT_EQ(g1[t].size(), g4[t].size());
    for (std::size_t i = 0; i < g1[t].size(); ++i)
      EXPECT_FLOAT_EQ(g1[t][i], g4[t][i]) << "input " << t << " coord " << i;
  }
}

TEST(Storage, ReshapeAndDetachAliasTheValueBuffer) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6}, true);
  Tensor r = reshape(a, {3, 2});
  EXPECT_EQ(r.data(), a.data());  // view, not a copy
  Tensor d = a.detach();
  EXPECT_EQ(d.data(), a.data());
  EXPECT_FALSE(d.requires_grad());
  // Writes through the view are visible through the source handle.
  r.set(0, 42.0f);
  EXPECT_FLOAT_EQ(a.at(0), 42.0f);
}

TEST(LinearRelu, FusedMatchesComposition) {
  // The fused op and relu(linear(...)) compute the same function; forward
  // values and all three gradients must agree within the parity tolerance.
  auto rng = rng_fixed();
  for (const auto& [b, in, out] : {std::tuple{1, 5, 3}, std::tuple{12, 40, 24},
                                   std::tuple{33, 17, 65}}) {
    std::vector<Tensor> inputs{Tensor::randn({b, in}, rng, 1.0f, true),
                               Tensor::randn({in, out}, rng, 0.5f, true),
                               Tensor::randn({out}, rng, 0.5f, true)};
    const Eval fused = evaluate(
        [](std::vector<Tensor>& v) { return linear_relu(v[0], v[1], v[2]); },
        inputs);
    const Eval composed = evaluate(
        [](std::vector<Tensor>& v) {
          return relu(linear(v[0], v[1], v[2]));
        },
        inputs);
    expect_close(composed.out, fused.out, "linear_relu forward");
    for (std::size_t i = 0; i < composed.grads.size(); ++i)
      expect_close(composed.grads[i], fused.grads[i],
                   ("linear_relu grad " + std::to_string(i)).c_str());
  }
}

TEST(LinearRelu, GradientsMatchFiniteDifferences) {
  auto rng = rng_fixed();
  std::vector<Tensor> inputs{Tensor::randn({3, 4}, rng, 1.0f, true),
                             Tensor::randn({4, 2}, rng, 1.0f, true),
                             Tensor::randn({2}, rng, 1.0f, true)};
  auto loss_of = [&]() {
    return sum_all(square(linear_relu(inputs[0], inputs[1], inputs[2])));
  };
  for (auto& t : inputs) t.zero_grad();
  loss_of().backward();
  const float eps = 1e-2f;
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    for (std::int64_t i = 0; i < inputs[t].size(); ++i) {
      const float orig = inputs[t].at(i);
      inputs[t].set(i, orig + eps);
      const float up = loss_of().item();
      inputs[t].set(i, orig - eps);
      const float down = loss_of().item();
      inputs[t].set(i, orig);
      const float fd = (up - down) / (2.0f * eps);
      const float an = inputs[t].grad()[static_cast<std::size_t>(i)];
      // Central differences in float are noisy; 2e-2 absolute-or-relative
      // is tight enough to catch a wrong mask or transposed GEMM.
      EXPECT_NEAR(an, fd, 2e-2f * std::max(1.0f, std::abs(fd)))
          << "input " << t << " coord " << i;
    }
  }
}

TEST(ScratchArena, NoAllocationGrowthAcrossTrainingIterations) {
  // A steady-state training loop must stop allocating workspace once the
  // per-thread arenas are warm: the im2col buffers, channel-major gathers
  // and per-image dW partials all reuse their slabs.
  //
  // The naive reference kernels bypass the arena entirely, so pin a fast
  // tier for the duration (the binary may run under AFP_NAIVE_KERNELS=1).
  const bool naive_entry = naive_kernels();
  set_naive_kernels(false);
  auto rng = rng_fixed();
  const Tensor x = Tensor::randn({4, 3, 16, 16}, rng, 1.0f);
  Tensor w = Tensor::randn({6, 3, 3, 3}, rng, 0.3f, true);
  Tensor b = Tensor::randn({6}, rng, 0.3f, true);
  Tensor fw = Tensor::randn({6 * 16 * 16, 32}, rng, 0.1f, true);
  Tensor fb = Tensor::randn({32}, rng, 0.1f, true);
  auto train_step = [&] {
    w.zero_grad();
    b.zero_grad();
    fw.zero_grad();
    fb.zero_grad();
    Tensor h = conv2d(x, w, b, 1, 1);
    h = reshape(h, {4, 6 * 16 * 16});
    h = linear_relu(h, fw, fb);
    sum_all(square(h)).backward();
  };
  for (int i = 0; i < 2; ++i) train_step();  // warm-up fills the arena
  const std::uint64_t allocs = scratch_allocation_count();
  const std::uint64_t bytes = scratch_allocated_bytes();
  EXPECT_GT(allocs, 0u);  // the loop really does run through the arena
  for (int i = 0; i < 8; ++i) train_step();
  EXPECT_EQ(scratch_allocation_count(), allocs)
      << "workspace allocated after warm-up";
  EXPECT_EQ(scratch_allocated_bytes(), bytes);
  set_naive_kernels(naive_entry);
}

TEST(Storage, BufferPoolRecyclesFreedBuffers) {
  // Use a size far larger than any other allocation in this binary so the
  // best-fit lookup can only ever see this buffer.
  constexpr std::size_t kOdd = (1u << 22) + 12347;
  auto buf = detail::acquire_buffer(kOdd);
  float* raw = buf->data();
  const std::size_t parked = detail::buffer_pool_size();
  buf.reset();  // returns the storage to the pool
  EXPECT_EQ(detail::buffer_pool_size(), parked + 1);
  auto again = detail::acquire_buffer(kOdd);
  EXPECT_EQ(detail::buffer_pool_size(), parked);
  EXPECT_EQ(again->data(), raw);  // same storage came back
}

}  // namespace
}  // namespace afp::num
