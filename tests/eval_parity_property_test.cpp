// Property harness for the incremental evaluation engine
// (metaheur/eval_cache): over 200 seeds per (circuit, representation), long
// accept/reject move walks must score bitwise identically through the delta
// evaluator, the AFP_EVAL=check oracle (which recomputes the legacy path on
// every call and throws std::logic_error on any cost or rect divergence),
// and a from-scratch pack + sp_cost done here.  Separately, searches that
// share a transposition cache must stay bitwise thread-invariant (1 vs 4
// pool threads) and identical to cache-free runs.
#include <gtest/gtest.h>

#include <cstring>

#include "metaheur/eval_cache.hpp"
#include "metaheur/tempering.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp {
namespace {

constexpr int kSeeds = 200;
constexpr int kWalkLength = 40;

floorplan::Instance instance_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

/// Restores the process-wide eval mode on scope exit so test order (and the
/// CI AFP_EVAL=check leg) cannot leak a mode into unrelated tests.
class ScopedEvalMode {
 public:
  explicit ScopedEvalMode(metaheur::EvalMode m)
      : prev_(metaheur::eval_mode()) {
    metaheur::set_eval_mode(m);
  }
  ~ScopedEvalMode() { metaheur::set_eval_mode(prev_); }

 private:
  metaheur::EvalMode prev_;
};

struct RepCase {
  std::string circuit;
  metaheur::Representation rep;
};

std::string case_name(const ::testing::TestParamInfo<RepCase>& info) {
  return info.param.circuit + "_" + metaheur::to_string(info.param.rep);
}

class EvalParityProperty : public ::testing::TestWithParam<RepCase> {};

/// One SA-shaped walk: candidate = accepted state + a burst of moves, with a
/// deterministic accept/reject pattern so the evaluator's cached packing
/// regularly diverges from the proposed state (the rejected-candidate diff
/// is the hard case for delta repacking).  Every evaluation is compared
/// bitwise against a from-scratch pack + sp_cost.
template <class State, class MutateFn, class EvalFn, class OracleFn>
void run_walk(State cur, MutateFn mutate, EvalFn eval, OracleFn oracle,
              std::mt19937_64& rng, int seed) {
  double cur_cost = 0.0;
  bool have_cur = false;
  std::uniform_int_distribution<int> burst(1, 3);
  for (int step = 0; step < kWalkLength; ++step) {
    State cand = cur;
    const int moves = burst(rng);
    for (int m = 0; m < moves; ++m) mutate(cand, rng);
    const double got = eval(cand);
    const double want = oracle(cand);
    ASSERT_TRUE(same_bits(got, want))
        << "seed " << seed << " step " << step << ": delta=" << got
        << " full=" << want;
    if (!have_cur || got < cur_cost || step % 3 == 0) {
      cur = std::move(cand);
      cur_cost = got;
      have_cur = true;
    }
  }
}

TEST_P(EvalParityProperty, DeltaMatchesFullOverMoveWalks) {
  const auto& param = GetParam();
  const auto inst = instance_of(param.circuit);
  for (const auto mode :
       {metaheur::EvalMode::kDelta, metaheur::EvalMode::kCheck}) {
    ScopedEvalMode scoped(mode);
    for (int seed = 0; seed < kSeeds; ++seed) {
      std::mt19937_64 rng(static_cast<std::uint64_t>(seed) + 7);
      const double spacing = seed % 2 == 0 ? 0.0 : inst.canvas_w / 32.0;
      if (param.rep == metaheur::Representation::kBStarTree) {
        metaheur::BStarEvaluator ev(inst, spacing);
        run_walk(
            metaheur::BStarTree::random(inst.num_blocks(), rng),
            [](metaheur::BStarTree& t, std::mt19937_64& r) {
              std::uniform_int_distribution<int> d(
                  0, metaheur::kNumBStarMoves - 1);
              apply_bstar_move(t, static_cast<metaheur::BStarMove>(d(r)), r);
            },
            [&](const metaheur::BStarTree& t) { return ev.cost(t); },
            [&](const metaheur::BStarTree& t) {
              return metaheur::sp_cost(inst, pack_bstar(inst, t, spacing));
            },
            rng, seed);
      } else {
        metaheur::SpEvaluator ev(inst, spacing);
        run_walk(
            metaheur::SequencePair::random(inst.num_blocks(), rng),
            [](metaheur::SequencePair& s, std::mt19937_64& r) {
              std::uniform_int_distribution<int> d(0, metaheur::kNumMoves - 1);
              apply_move(s, static_cast<metaheur::Move>(d(r)), r);
            },
            [&](const metaheur::SequencePair& s) { return ev.cost(s); },
            [&](const metaheur::SequencePair& s) {
              return metaheur::sp_cost(inst, pack(inst, s, spacing));
            },
            rng, seed);
      }
    }
  }
}

TEST_P(EvalParityProperty, TranspositionHitsVerifyUnderCheckMode) {
  // Two evaluators sharing one cache revisit the same states; in check mode
  // every hit's memoized value is verified bitwise against the oracle
  // inside the evaluator (a mismatch throws), so this walk passing means
  // the cache never served a wrong cost.
  const auto& param = GetParam();
  const auto inst = instance_of(param.circuit);
  ScopedEvalMode scoped(metaheur::EvalMode::kCheck);
  metaheur::TranspositionCache tt;
  for (int pass = 0; pass < 2; ++pass) {
    std::mt19937_64 rng(99);  // same seed: pass 2 replays pass 1's states
    if (param.rep == metaheur::Representation::kBStarTree) {
      metaheur::BStarEvaluator ev(inst, 0.0, &tt);
      auto t = metaheur::BStarTree::random(inst.num_blocks(), rng);
      for (int step = 0; step < kWalkLength; ++step) {
        std::uniform_int_distribution<int> d(0, metaheur::kNumBStarMoves - 1);
        apply_bstar_move(t, static_cast<metaheur::BStarMove>(d(rng)), rng);
        ev.cost(t);
      }
    } else {
      metaheur::SpEvaluator ev(inst, 0.0, &tt);
      auto s = metaheur::SequencePair::random(inst.num_blocks(), rng);
      for (int step = 0; step < kWalkLength; ++step) {
        std::uniform_int_distribution<int> d(0, metaheur::kNumMoves - 1);
        apply_move(s, static_cast<metaheur::Move>(d(rng)), rng);
        ev.cost(s);
      }
    }
  }
  EXPECT_GT(tt.hits(), 0);  // the replayed pass must actually hit
}

INSTANTIATE_TEST_SUITE_P(
    Representations, EvalParityProperty,
    ::testing::Values(
        RepCase{"ota2", metaheur::Representation::kSequencePair},
        RepCase{"ota2", metaheur::Representation::kBStarTree},
        RepCase{"bias2", metaheur::Representation::kSequencePair},
        RepCase{"bias2", metaheur::Representation::kBStarTree}),
    case_name);

void expect_same_result(const metaheur::BaselineResult& a,
                        const metaheur::BaselineResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.rects.size(), b.rects.size()) << what;
  for (std::size_t i = 0; i < a.rects.size(); ++i) {
    EXPECT_TRUE(same_bits(a.rects[i].x, b.rects[i].x) &&
                same_bits(a.rects[i].y, b.rects[i].y) &&
                same_bits(a.rects[i].w, b.rects[i].w) &&
                same_bits(a.rects[i].h, b.rects[i].h))
        << what << ": rect " << i;
  }
  EXPECT_TRUE(same_bits(a.eval.reward, b.eval.reward)) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
}

TEST(TranspositionDeterminism, SharedCacheIsThreadInvariant) {
  // PT replicas step concurrently on the pool and share the job cache; the
  // ensemble must stay bitwise identical across thread counts — and
  // identical to a run with no cache at all, since memoized costs are pure
  // functions of the key.
  ScopedEvalMode scoped(metaheur::EvalMode::kDelta);
  const auto inst = instance_of("ota2");
  auto run_with = [&](int threads, metaheur::TranspositionCache* tt) {
    metaheur::PTParams p;
    p.replicas = 4;
    p.iterations = 200;
    p.tt = tt;
    num::set_num_threads(threads);
    std::mt19937_64 rng(42);
    auto r = run_pt(inst, p, rng);
    num::set_num_threads(0);  // restore the ambient default
    return r;
  };
  metaheur::TranspositionCache tt1, tt4;
  const auto r1 = run_with(1, &tt1);
  const auto r4 = run_with(4, &tt4);
  expect_same_result(r1, r4, "pt 1 vs 4 threads, shared tt");
  const auto bare = run_with(4, nullptr);
  expect_same_result(r1, bare, "pt with tt vs without");
}

TEST(TranspositionDeterminism, CacheDoesNotPerturbSa) {
  // A single SA chain with and without the memo must agree bitwise, in both
  // the delta mode and under the check oracle.
  const auto inst = instance_of("bias2");
  for (const auto mode :
       {metaheur::EvalMode::kDelta, metaheur::EvalMode::kCheck}) {
    ScopedEvalMode scoped(mode);
    metaheur::SAParams p;
    p.iterations = 400;
    auto run_with = [&](metaheur::TranspositionCache* tt) {
      metaheur::SAParams q = p;
      q.tt = tt;
      std::mt19937_64 rng(7);
      return run_sa(inst, q, rng);
    };
    metaheur::TranspositionCache tt;
    expect_same_result(run_with(&tt), run_with(nullptr),
                       std::string("sa, mode ") + to_string(mode));
  }
}

}  // namespace
}  // namespace afp
