// Ingest subsystem tests.
//
//   1. Malformed-deck suite: every rejected construct must surface as a
//      structured ParseError carrying file:line — never a crash, never a
//      silent partial netlist.
//   2. Subcircuit-expansion goldens: hierarchical decks elaborate with
//      deterministic name prefixing, port-to-actual net mapping, global
//      supplies and global -> subckt-default -> X-override param scoping.
//   3. Scenario-generator property suite (200 seeded specs across all
//      four families): generation is a pure function of the spec, the
//      recognized block count and names match the generator's own
//      accounting exactly, and the constraint overlay is satisfiable —
//      shown constructively by an analytic witness placement.
#include <gtest/gtest.h>

#include <set>

#include "floorplan/instance.hpp"
#include "ingest/scenario.hpp"
#include "ingest/spice_parser.hpp"

namespace afp {
namespace {

// --------------------------------------------------------- deck parsing ---

netlist::Netlist parse(const std::string& text,
                       const ingest::ParseOptions& opts = {}) {
  return ingest::parse_deck(text, "deck.sp", opts);
}

/// Expects `text` to be rejected with a diagnostic anchored at `line` whose
/// message contains `needle`.
void expect_error(const std::string& text, int line,
                  const std::string& needle,
                  const ingest::ParseOptions& opts = {}) {
  try {
    parse(text, opts);
    FAIL() << "deck accepted; expected error containing '" << needle << "'";
  } catch (const ingest::ParseError& e) {
    EXPECT_EQ(e.file(), "deck.sp") << e.what();
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(SpiceParser, TruncatedSubcktIsAnError) {
  expect_error(".subckt stage in out\nM1 out in VSS VSS nch w=2u\n", 1,
               "unterminated .subckt 'stage'");
}

TEST(SpiceParser, CyclicInstantiationIsAnError) {
  const std::string deck =
      ".subckt a x\n"
      "XB x b\n"
      ".ends\n"
      ".subckt b x\n"
      "XA x a\n"
      ".ends\n"
      "XTOP n1 a\n";
  try {
    parse(deck);
    FAIL() << "cyclic deck accepted";
  } catch (const ingest::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("recursive"), std::string::npos)
        << e.what();
  }
}

TEST(SpiceParser, DepthCapStopsDeepHierarchies) {
  // A 5-deep linear chain with max_depth 3: no cycle, still rejected.
  std::string deck;
  for (int i = 0; i < 5; ++i) {
    deck += ".subckt s" + std::to_string(i) + " p\n";
    if (i + 1 < 5) deck += "X p s" + std::to_string(i + 1) + "\n";
    deck += "M1 p p VSS VSS nch w=1u\n.ends\n";
  }
  deck += "XT n s0\n";
  ingest::ParseOptions opts;
  opts.max_depth = 3;
  EXPECT_THROW(parse(deck, opts), ingest::ParseError);
}

TEST(SpiceParser, OverlongLineIsAnError) {
  ingest::ParseOptions opts;
  opts.max_line_bytes = 64;
  expect_error("M1 d g s b nch w=1u " + std::string(100, ' ') + "l=1u\n", 1,
               "line exceeds", opts);
}

TEST(SpiceParser, BadDeviceParametersAreErrors) {
  expect_error("M1 d g s b nch w=-2u\n", 1, "bad W/L/NF on 'M1'");
  expect_error("M1 d g s b nch w=1u nf=0\n", 1, "bad W/L/NF on 'M1'");
  expect_error("R1 a b 0\n", 1, "non-positive");
  expect_error("M1 d g s\n", 1, "needs <d> <g> <s> <b> <model>");
  expect_error("M1 d g s b nch w=1u stray\n", 1,
               "positional field 'stray' after parameter assignments");
}

TEST(SpiceParser, UnknownDirectiveIsAnError) {
  expect_error("M1 d g s b nch w=1u\n.frobnicate all\n", 2,
               "unsupported directive '.frobnicate'");
}

TEST(SpiceParser, DuplicateDeviceNameIsAnError) {
  EXPECT_THROW(parse("M1 d g s b nch w=1u\nM1 e f h b nch w=1u\n"),
               ingest::ParseError);
}

TEST(SpiceParser, AmbiguousTopCellIsAnError) {
  // Two root subckts, no top-level cards: auto-selection cannot choose.
  const std::string deck =
      ".subckt a x\nM1 x x VSS VSS nch w=1u\n.ends\n"
      ".subckt b x\nM1 x x VSS VSS nch w=1u\n.ends\n";
  try {
    parse(deck);
    FAIL() << "ambiguous deck accepted";
  } catch (const ingest::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("ambiguous top"), std::string::npos)
        << e.what();
  }
  // An explicit top disambiguates the same deck.
  ingest::ParseOptions opts;
  opts.top = "b";
  const auto nl = parse(deck, opts);
  EXPECT_EQ(nl.num_devices(), 1);
}

TEST(SpiceParser, UnknownSubcircuitIsAnError) {
  EXPECT_THROW(parse("X1 a b nosuch\n"), ingest::ParseError);
}

TEST(SpiceParser, DanglingContinuationIsAnError) {
  expect_error("+ w=1u\n", 1, "continuation");
}

TEST(SpiceParser, MissingFileIsALineZeroError) {
  try {
    ingest::parse_file("/nonexistent/deck.sp");
    FAIL() << "missing file accepted";
  } catch (const ingest::ParseError& e) {
    EXPECT_EQ(e.line(), 0);
  }
}

// ---------------------------------------------------- expansion goldens ---

TEST(SpiceParser, ExpansionPrefixesMapsAndScopesParams) {
  const std::string deck =
      ".param wg=4u\n"
      ".subckt inv in out w=2u\n"
      "MP out in VDD VDD pch w={2*w} l=0.3u\n"
      "MN out in VSS VSS nch w={w} l=0.3u\n"
      ".ends\n"
      "X1 a y inv w=wg\n"
      "X2 y z inv\n"
      "M9 z a VSS VSS nch w=1u\n";
  const auto nl = parse(deck);
  ASSERT_EQ(nl.num_devices(), 5);

  // Depth-first deck order, instance-prefixed clone names.
  EXPECT_EQ(nl.device(0).name, "X1.MP");
  EXPECT_EQ(nl.device(1).name, "X1.MN");
  EXPECT_EQ(nl.device(2).name, "X2.MP");
  EXPECT_EQ(nl.device(3).name, "X2.MN");
  EXPECT_EQ(nl.device(4).name, "M9");

  // Port-to-actual mapping; supplies stay global (never prefixed).
  EXPECT_EQ(nl.device(0).drain(), "y");
  EXPECT_EQ(nl.device(0).gate(), "a");
  EXPECT_EQ(nl.device(0).source(), "VDD");
  EXPECT_EQ(nl.device(2).drain(), "z");
  EXPECT_EQ(nl.device(2).gate(), "y");

  // Param scoping: X1 overrides w with the global wg; X2 takes the subckt
  // default.  The {2*w} arithmetic sees the effective scope value.
  EXPECT_DOUBLE_EQ(nl.device(0).width_um, 8.0);  // X1.MP: 2*wg
  EXPECT_DOUBLE_EQ(nl.device(1).width_um, 4.0);  // X1.MN: wg
  EXPECT_DOUBLE_EQ(nl.device(2).width_um, 4.0);  // X2.MP: 2*default
  EXPECT_DOUBLE_EQ(nl.device(3).width_um, 2.0);  // X2.MN: default
}

TEST(SpiceParser, InternalNetsArePrefixedPerInstance) {
  const std::string deck =
      ".subckt buf in out\n"
      "MN1 mid in VSS VSS nch w=1u\n"
      "MN2 out mid VSS VSS nch w=1u\n"
      ".ends\n"
      "X3 p q buf\n"
      "X4 q r buf\n";
  const auto nl = parse(deck);
  ASSERT_EQ(nl.num_devices(), 4);
  EXPECT_EQ(nl.device(0).drain(), "X3.mid");
  EXPECT_EQ(nl.device(1).gate(), "X3.mid");
  EXPECT_EQ(nl.device(2).drain(), "X4.mid");  // no cross-instance sharing
}

// ------------------------------------------- scenario generator properties ---

/// Per-block shape choice for the witness: the flattest candidate.
/// Identical twin blocks carry identical candidate arrays, so the choice is
/// congruent across every symmetry pair and matching group.
floorplan::Shape flattest(const floorplan::Block& b) {
  floorplan::Shape s = b.shapes[0];
  for (const auto& cand : b.shapes) {
    if (cand.h < s.h) s = cand;
  }
  return s;
}

/// Analytic witness placement for a generated constraint overlay:
///   * pre-placed anchors at their pinned corners (below the keep-out),
///   * all symmetry pairs nested around a shared vertical axis (x = 0) in
///     one row above the keep-out strip,
///   * every remaining block in a second row above that — a single common
///     bottom edge satisfies the alignment group, congruent shapes satisfy
///     matching.
/// Returns one rect per block; overlap-free by construction (checked).
std::vector<geom::Rect> witness_placement(const floorplan::Instance& inst) {
  const auto& cs = inst.constraints;
  const int n = inst.num_blocks();
  std::vector<floorplan::Shape> sh(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    sh[static_cast<std::size_t>(i)] =
        flattest(inst.blocks[static_cast<std::size_t>(i)]);
  }
  std::vector<geom::Rect> r(static_cast<std::size_t>(n));
  std::vector<char> placed(static_cast<std::size_t>(n), 0);
  const double gap = 1.0;

  double strip_top = 0.0;
  for (const auto& ko : cs.keep_outs) {
    strip_top = std::max(strip_top, ko.region.y + ko.region.h);
  }

  for (const auto& pp : cs.preplaced) {
    const auto& s = sh[static_cast<std::size_t>(pp.block)];
    r[static_cast<std::size_t>(pp.block)] = {pp.x, pp.y, s.w, s.h};
    placed[static_cast<std::size_t>(pp.block)] = 1;
  }

  const double y1 = strip_top + gap;
  double row1_h = 0.0;
  double off = gap;
  for (const auto& sp : cs.sym_pairs) {
    const auto& sa = sh[static_cast<std::size_t>(sp.a)];
    const auto& sb = sh[static_cast<std::size_t>(sp.b)];
    r[static_cast<std::size_t>(sp.a)] = {-off - sa.w, y1, sa.w, sa.h};
    r[static_cast<std::size_t>(sp.b)] = {off, y1, sb.w, sb.h};
    placed[static_cast<std::size_t>(sp.a)] = 1;
    placed[static_cast<std::size_t>(sp.b)] = 1;
    off += std::max(sa.w, sb.w) + gap;
    row1_h = std::max(row1_h, std::max(sa.h, sb.h));
  }

  const double y2 = y1 + row1_h + gap;
  double x = 0.0;
  for (int i = 0; i < n; ++i) {
    if (placed[static_cast<std::size_t>(i)]) continue;
    const auto& s = sh[static_cast<std::size_t>(i)];
    r[static_cast<std::size_t>(i)] = {x, y2, s.w, s.h};
    x += s.w + gap;
  }
  return r;
}

bool any_overlap(const std::vector<geom::Rect>& rects) {
  for (std::size_t i = 0; i < rects.size(); ++i) {
    for (std::size_t j = i + 1; j < rects.size(); ++j) {
      if (rects[i].overlaps(rects[j])) return true;
    }
  }
  return false;
}

/// Netlist equality at device granularity (terminals included).
void expect_same_netlist(const netlist::Netlist& a, const netlist::Netlist& b) {
  ASSERT_EQ(a.num_devices(), b.num_devices());
  for (int i = 0; i < a.num_devices(); ++i) {
    const auto& da = a.device(i);
    const auto& db = b.device(i);
    EXPECT_EQ(da.name, db.name);
    EXPECT_EQ(da.type, db.type);
    EXPECT_EQ(da.terminals, db.terminals);
    EXPECT_DOUBLE_EQ(da.width_um, db.width_um);
    EXPECT_DOUBLE_EQ(da.length_um, db.length_um);
    EXPECT_EQ(da.fingers, db.fingers);
    EXPECT_DOUBLE_EQ(da.value, db.value);
  }
}

TEST(ScenarioGenerator, TwoHundredSeedPropertySweep) {
  const int kSizes[] = {10, 13, 24, 37, 58, 90};
  int checked = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    for (const auto& family : ingest::scenario_families()) {
      ingest::ScenarioSpec spec;
      spec.family = family;
      spec.size = kSizes[(seed + checked) % (sizeof(kSizes) / sizeof(int))];
      spec.seed = seed;
      SCOPED_TRACE(spec.to_string());
      const auto sc = ingest::make_scenario(spec);
      ++checked;

      // Spec round-trip through the canonical string form.
      const auto reparsed = ingest::ScenarioSpec::parse(spec.to_string());
      EXPECT_EQ(reparsed.family, spec.family);
      EXPECT_EQ(reparsed.size, spec.size);
      EXPECT_EQ(reparsed.seed, spec.seed);

      // Pure function of the spec: regeneration is identical.
      if (seed % 10 == 0) {
        const auto again = ingest::make_scenario(spec);
        expect_same_netlist(sc.netlist, again.netlist);
        ASSERT_EQ(sc.block_names, again.block_names);
      }

      // Exact block accounting: recognition yields precisely the blocks the
      // generator predicted, by name.
      auto g = graphir::build_graph(sc.netlist,
                                    structrec::recognize(sc.netlist));
      ASSERT_EQ(g.num_nodes(), spec.size);
      std::set<std::string> predicted(sc.block_names.begin(),
                                      sc.block_names.end());
      ASSERT_EQ(predicted.size(), sc.block_names.size());
      for (const auto& node : g.nodes) {
        EXPECT_EQ(predicted.count(node.name), 1u)
            << "unpredicted block " << node.name;
      }

      // Constraint satisfiability: the witness placement satisfies every
      // overlay item and is overlap-free.
      graphir::apply_constraints(g, graphir::resolve(sc.constraints, g));
      const auto inst = floorplan::make_instance(g);
      EXPECT_FALSE(inst.constraints.empty());
      const auto rects = witness_placement(inst);
      int items = 0;
      const int violated =
          floorplan::constraint_violations(inst, rects, 1e-6, &items);
      EXPECT_EQ(violated, 0) << violated << "/" << items << " items violated";
      EXPECT_GT(items, 0);
      EXPECT_FALSE(any_overlap(rects));
    }
  }
  EXPECT_EQ(checked, 200);
}

TEST(ScenarioGenerator, SuffixKeysParseAndApply) {
  const auto spec = ingest::ScenarioSpec::parse("latch:20:7:ar=1.5:ws=0.2");
  EXPECT_EQ(spec.family, "latch");
  EXPECT_EQ(spec.size, 20);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.aspect, 1.5);
  EXPECT_DOUBLE_EQ(spec.whitespace, 0.2);
  EXPECT_TRUE(spec.constrained);

  const auto sc = ingest::make_scenario(spec);
  EXPECT_TRUE(sc.constraints.target_aspect.has_value());
  EXPECT_DOUBLE_EQ(*sc.constraints.target_aspect, 1.5);
  EXPECT_DOUBLE_EQ(sc.constraints.extra_whitespace, 0.2);

  const auto plain = ingest::make_scenario(
      ingest::ScenarioSpec::parse("ota:12:3:plain=1"));
  EXPECT_TRUE(plain.constraints.sym_pairs.empty());
  EXPECT_TRUE(plain.constraints.preplaced.empty());
  EXPECT_TRUE(plain.constraints.keep_outs.empty());
}

TEST(ScenarioGenerator, MalformedSpecsAreRejected) {
  EXPECT_THROW(ingest::ScenarioSpec::parse("warp_core:10:1"),
               std::invalid_argument);
  EXPECT_THROW(ingest::ScenarioSpec::parse("ota:2:1"), std::invalid_argument);
  EXPECT_THROW(ingest::ScenarioSpec::parse("ota:9001:1:ar=-2"),
               std::invalid_argument);
  EXPECT_THROW(ingest::ScenarioSpec::parse("ota:10:1:bogus=3"),
               std::invalid_argument);
  EXPECT_THROW(ingest::ScenarioSpec::parse("ota"), std::invalid_argument);
  EXPECT_THROW(ingest::ScenarioSpec::parse("ota:ten:1"),
               std::invalid_argument);
}

}  // namespace
}  // namespace afp
