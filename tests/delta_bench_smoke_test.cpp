// Bench-smoke gate for the incremental evaluation engine: over every
// Table I circuit, a seeded SA run (both encodings) and a seeded PT run
// must produce bitwise-identical best floorplans under AFP_EVAL=full and
// AFP_EVAL=delta.  This is the end-to-end guarantee behind the bench's
// delta-vs-full speedup table: the fast path changes wall time only, never
// a result.
#include <gtest/gtest.h>

#include <cstring>

#include "metaheur/eval_cache.hpp"
#include "metaheur/tempering.hpp"
#include "netlist/library.hpp"

namespace afp {
namespace {

const char* const kTableICircuits[] = {"ota1",     "ota2",   "bias1",
                                       "rs_latch", "driver", "bias2"};

floorplan::Instance instance_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(a)) == 0;
}

class ScopedEvalMode {
 public:
  explicit ScopedEvalMode(metaheur::EvalMode m)
      : prev_(metaheur::eval_mode()) {
    metaheur::set_eval_mode(m);
  }
  ~ScopedEvalMode() { metaheur::set_eval_mode(prev_); }

 private:
  metaheur::EvalMode prev_;
};

void expect_same(const metaheur::BaselineResult& full,
                 const metaheur::BaselineResult& delta,
                 const std::string& what) {
  ASSERT_EQ(full.rects.size(), delta.rects.size()) << what;
  for (std::size_t i = 0; i < full.rects.size(); ++i) {
    EXPECT_TRUE(same_bits(full.rects[i].x, delta.rects[i].x) &&
                same_bits(full.rects[i].y, delta.rects[i].y) &&
                same_bits(full.rects[i].w, delta.rects[i].w) &&
                same_bits(full.rects[i].h, delta.rects[i].h))
        << what << ": rect " << i;
  }
  EXPECT_TRUE(same_bits(full.eval.reward, delta.eval.reward))
      << what << ": reward " << full.eval.reward << " vs "
      << delta.eval.reward;
  EXPECT_EQ(full.evaluations, delta.evaluations) << what;
}

template <class RunFn>
void compare_modes(RunFn run, const std::string& what) {
  metaheur::BaselineResult full, delta;
  {
    ScopedEvalMode scoped(metaheur::EvalMode::kFull);
    full = run();
  }
  {
    ScopedEvalMode scoped(metaheur::EvalMode::kDelta);
    delta = run();
  }
  expect_same(full, delta, what);
}

TEST(DeltaBenchSmoke, SaBestCostsMatchFullOnTableI) {
  for (const char* name : kTableICircuits) {
    const auto inst = instance_of(name);
    metaheur::SAParams p;
    p.iterations = 600;
    compare_modes(
        [&]() {
          std::mt19937_64 rng(11);
          return run_sa(inst, p, rng);
        },
        std::string("sa/") + name);
    metaheur::BStarSAParams bp;
    bp.iterations = 600;
    compare_modes(
        [&]() {
          std::mt19937_64 rng(11);
          return run_sa_bstar(inst, bp, rng);
        },
        std::string("sab/") + name);
  }
}

TEST(DeltaBenchSmoke, PtBestCostsMatchFullOnTableI) {
  for (const char* name : kTableICircuits) {
    const auto inst = instance_of(name);
    metaheur::PTParams p;
    p.replicas = 3;
    p.iterations = 200;
    compare_modes(
        [&]() {
          std::mt19937_64 rng(23);
          return run_pt(inst, p, rng);
        },
        std::string("pt/") + name);
  }
}

}  // namespace
}  // namespace afp
