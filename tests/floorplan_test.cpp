#include <gtest/gtest.h>

#include "floorplan/grid.hpp"
#include "netlist/library.hpp"

namespace afp::floorplan {
namespace {

Instance instance_of(const netlist::Netlist& nl, bool constrained = false) {
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  if (constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  }
  return make_instance(g);
}

/// Simple handcrafted 2-block instance for precise mask assertions.
Instance tiny_instance() {
  Instance inst;
  inst.name = "tiny";
  for (int i = 0; i < 2; ++i) {
    Block b;
    b.name = "b" + std::to_string(i);
    b.type = structrec::StructureType::kSingleNmos;
    b.area_um2 = 64.0;
    b.shapes = {Shape{8.0, 8.0}, Shape{8.0, 8.0}, Shape{8.0, 8.0}};
    inst.blocks.push_back(b);
  }
  inst.nets = {{0, 1}};
  inst.canvas_w = 32.0;
  inst.canvas_h = 32.0;
  inst.hpwl_ref = 8.0;
  return inst;
}

TEST(CandidateShapes, AreaPreservedAcrossVariants) {
  for (int t = 0; t < structrec::kNumStructureTypes; ++t) {
    const auto shapes =
        candidate_shapes(25.0, static_cast<structrec::StructureType>(t));
    for (const auto& s : shapes) {
      EXPECT_NEAR(s.area(), 25.0, 1e-9);
      EXPECT_GT(s.w, 0.0);
    }
  }
}

TEST(CandidateShapes, MatchedPairsAreWide) {
  const auto dp = candidate_shapes(16.0, structrec::StructureType::kDiffPairN);
  for (const auto& s : dp) EXPECT_GE(s.w, s.h - 1e-9);
}

TEST(Instance, PlacementOrderDecreasingArea) {
  const auto inst = instance_of(netlist::make_bias2());
  const auto order = inst.placement_order();
  ASSERT_EQ(static_cast<int>(order.size()), inst.num_blocks());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(inst.blocks[static_cast<std::size_t>(order[i - 1])].area_um2,
              inst.blocks[static_cast<std::size_t>(order[i])].area_um2);
  }
}

TEST(Instance, CanvasCoversRmaxFloorplans) {
  const auto inst = instance_of(netlist::make_ota2());
  EXPECT_NEAR(inst.canvas_w * inst.canvas_h,
              inst.total_block_area() * 11.0, 1e-6);
}

TEST(Evaluate, PerfectPackingAtReferenceScoresZero) {
  Instance inst = tiny_instance();
  // Two 8x8 blocks side by side: zero dead space; centers 8 apart.
  const std::vector<geom::Rect> rects{{0, 0, 8, 8}, {8, 0, 8, 8}};
  inst.hpwl_ref = 8.0;
  const auto ev = evaluate_floorplan(inst, rects);
  EXPECT_NEAR(ev.dead_space, 0.0, 1e-9);
  EXPECT_NEAR(ev.hpwl, 8.0, 1e-9);
  EXPECT_NEAR(ev.reward, 0.0, 1e-9);
  EXPECT_TRUE(ev.constraints_ok);
}

TEST(Evaluate, DeadSpaceAndWirelengthPenalized) {
  Instance inst = tiny_instance();
  const std::vector<geom::Rect> rects{{0, 0, 8, 8}, {16, 16, 8, 8}};
  const auto ev = evaluate_floorplan(inst, rects);
  EXPECT_GT(ev.dead_space, 0.5);
  EXPECT_LT(ev.reward, -1.0);
}

TEST(Evaluate, TargetAspectTerm) {
  // A 2:1 strip pays the gamma (R* - R)^2 penalty when R* = 1 is requested
  // and none when the target matches or is absent.
  Instance inst = tiny_instance();
  const std::vector<geom::Rect> wide{{0, 0, 8, 8}, {8, 0, 8, 8}};
  const double free_reward = evaluate_floorplan(inst, wide).reward;
  inst.target_aspect = 2.0;
  EXPECT_NEAR(evaluate_floorplan(inst, wide).reward, free_reward, 1e-9);
  inst.target_aspect = 1.0;
  EXPECT_NEAR(evaluate_floorplan(inst, wide).reward, free_reward - 5.0, 1e-9);
}

TEST(Evaluate, ViolationGetsPenalty) {
  Instance inst = tiny_instance();
  inst.constraints.sym_pairs.push_back({0, 1, true});
  // Blocks at different rows: symmetric-pair row condition broken.
  const std::vector<geom::Rect> rects{{0, 0, 8, 8}, {8, 4, 8, 8}};
  const auto ev = evaluate_floorplan(inst, rects);
  EXPECT_FALSE(ev.constraints_ok);
  EXPECT_DOUBLE_EQ(ev.reward, -50.0);
}

TEST(ConstraintsSatisfied, VerticalSymPair) {
  Instance inst = tiny_instance();
  inst.constraints.sym_pairs.push_back({0, 1, true});
  EXPECT_TRUE(constraints_satisfied(
      inst, {{0, 0, 8, 8}, {8, 0, 8, 8}}));  // mirrored about x=8
  EXPECT_FALSE(constraints_satisfied(inst, {{0, 0, 8, 8}, {8, 2, 8, 8}}));
}

TEST(ConstraintsSatisfied, LoneSymPairRequiresCongruentDims) {
  // Regression: with a single sym pair the mirror axis is derived from that
  // very pair's midpoint, so the midpoint check was vacuously true and a
  // pair of different-sized blocks "satisfied" its symmetry.  Mirrored
  // twins must be congruent.
  Instance inst = tiny_instance();
  inst.constraints.sym_pairs.push_back({0, 1, true});
  // Same row, mismatched footprints: 8x8 vs 4x16 — reflection cannot map
  // one onto the other no matter where the axis sits.
  EXPECT_FALSE(constraints_satisfied(inst, {{0, 0, 8, 8}, {12, 0, 4, 16}}));
  EXPECT_FALSE(constraints_satisfied(inst, {{0, 0, 8, 8}, {12, 0, 8, 10}}));
  // Congruent and mirrored about the midpoint: satisfied.
  EXPECT_TRUE(constraints_satisfied(inst, {{0, 0, 8, 8}, {12, 0, 8, 8}}));
  // Horizontal pairs get the same treatment.
  Instance hinst = tiny_instance();
  hinst.constraints.sym_pairs.push_back({0, 1, false});
  EXPECT_FALSE(constraints_satisfied(hinst, {{0, 0, 8, 8}, {0, 12, 16, 4}}));
  EXPECT_TRUE(constraints_satisfied(hinst, {{0, 0, 8, 8}, {0, 12, 8, 8}}));
}

TEST(ConstraintsSatisfied, SelfSymPinsAxisForPairs) {
  Instance inst = tiny_instance();
  inst.blocks.push_back(inst.blocks[0]);
  inst.blocks[2].name = "dp";
  inst.constraints.self_syms.push_back({2, true});
  inst.constraints.sym_pairs.push_back({0, 1, true});
  // Self-sym block centered at x=12; pair must mirror about 12.
  EXPECT_TRUE(constraints_satisfied(
      inst, {{0, 8, 8, 8}, {16, 8, 8, 8}, {8, 0, 8, 8}}));
  EXPECT_FALSE(constraints_satisfied(
      inst, {{0, 8, 8, 8}, {10, 8, 8, 8}, {8, 0, 8, 8}}));
}

TEST(ConstraintsSatisfied, AlignGroups) {
  Instance inst = tiny_instance();
  inst.constraints.align_groups.push_back({{0, 1}, true});
  EXPECT_TRUE(constraints_satisfied(inst, {{0, 3, 8, 8}, {10, 3, 8, 8}}));
  EXPECT_FALSE(constraints_satisfied(inst, {{0, 3, 8, 8}, {10, 4, 8, 8}}));
}

// ---------------------------------------------------------------- grid ---

TEST(Grid, FootprintCeilQuantization) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  // 8 um on a 32 um canvas with 32 cells -> exactly 8 cells.
  EXPECT_EQ(fp.footprint(0, 0), (std::pair<int, int>{8, 8}));
}

TEST(Grid, PlaceAndOccupancy) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  EXPECT_TRUE(fp.fits(0, 0, 0, 0));
  fp.place(0, 0, 0, 0);
  EXPECT_TRUE(fp.placed(0));
  EXPECT_EQ(fp.num_placed(), 1);
  // Overlap rejected; abutment allowed.
  EXPECT_FALSE(fp.fits(1, 0, 7, 7));
  EXPECT_TRUE(fp.fits(1, 0, 8, 0));
  const auto fg = fp.occupancy_mask();
  EXPECT_FLOAT_EQ(fg[0], 1.0f);
  EXPECT_FLOAT_EQ(fg[7 * 32 + 7], 1.0f);
  EXPECT_FLOAT_EQ(fg[8 * 32 + 8], 0.0f);
}

TEST(Grid, OutOfBoundsRejected) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  EXPECT_FALSE(fp.fits(0, 0, 25, 0));  // 25 + 8 > 32
  EXPECT_FALSE(fp.fits(0, 0, -1, 0));
  EXPECT_FALSE(fp.fits(0, 0, 0, 30));
}

TEST(Grid, PlaceInvalidThrows) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 0);
  EXPECT_THROW(fp.place(1, 0, 0, 0), std::logic_error);
}

TEST(Grid, RectOfMatchesPlacement) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 4, 8);
  const auto r = fp.rect_of(0);
  EXPECT_DOUBLE_EQ(r.x, 4.0);
  EXPECT_DOUBLE_EQ(r.y, 8.0);
  EXPECT_DOUBLE_EQ(r.w, 8.0);
}

TEST(Grid, PartialMetrics) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  EXPECT_DOUBLE_EQ(fp.partial_dead_space(), 0.0);
  fp.place(0, 0, 0, 0);
  EXPECT_DOUBLE_EQ(fp.partial_dead_space(), 0.0);  // single block
  EXPECT_DOUBLE_EQ(fp.partial_hpwl(), 0.0);
  fp.place(1, 0, 16, 0);
  EXPECT_NEAR(fp.partial_dead_space(), 1.0 - 128.0 / (24 * 8), 1e-9);
  EXPECT_NEAR(fp.partial_hpwl(), 16.0, 1e-9);
  EXPECT_TRUE(fp.complete());
  EXPECT_EQ(fp.rects().size(), 2u);
}

TEST(Grid, PositionMaskExcludesOverlapsAndBounds) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 0);
  const auto mask = fp.position_mask(1, 0);
  EXPECT_FLOAT_EQ(mask[0], 0.0f);            // overlap
  EXPECT_FLOAT_EQ(mask[8], 1.0f);            // abutting right
  EXPECT_FLOAT_EQ(mask[25], 0.0f);           // would exceed right edge
  EXPECT_FLOAT_EQ(mask[24], 1.0f);           // exactly at the edge
}

TEST(Grid, WireMaskPrefersProximity) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 0);
  const auto fw = fp.wire_mask(1, 0);
  // Placing right next to block 0 must increase HPWL less than placing at
  // the far corner.
  EXPECT_LT(fw[8], fw[24 * 32 + 24]);
  // Occupied cells carry the maximum value 1.
  EXPECT_FLOAT_EQ(fw[0], 1.0f);
}

TEST(Grid, DeadSpaceMaskPrefersCompaction) {
  Instance inst = tiny_instance();
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 0);
  const auto fds = fp.dead_space_mask(1, 0);
  EXPECT_LT(fds[8], fds[24 * 32 + 0]);  // abutting beats a gap
  EXPECT_FLOAT_EQ(fds[3], 1.0f);        // overlapping region invalid
}

TEST(Grid, SymPairMasksEnforceMirrorAfterAxisKnown) {
  Instance inst = tiny_instance();
  inst.blocks.push_back(inst.blocks[0]);  // block 2: the self-sym anchor
  inst.constraints.self_syms.push_back({2, true});
  inst.constraints.sym_pairs.push_back({0, 1, true});
  GridFloorplan fp(inst, 32);
  // Anchor at col 12 row 0 -> axis at center 2*12+8 = 32 half-cells (x=16).
  fp.place(2, 0, 12, 0);
  ASSERT_TRUE(fp.vertical_axis2().has_value());
  EXPECT_EQ(*fp.vertical_axis2(), 32);
  // Place pair member 0 at col 2, row 8: center2 = 12.
  ASSERT_TRUE(fp.valid(0, 0, 2, 8));
  fp.place(0, 0, 2, 8);
  // Partner must mirror: center2 = 2*32 - 12 = 52 -> col = (52-8)/2 = 22,
  // same row, same shape.
  EXPECT_TRUE(fp.valid(1, 0, 22, 8));
  EXPECT_FALSE(fp.valid(1, 0, 21, 8));
  EXPECT_FALSE(fp.valid(1, 0, 22, 9));
  const auto mask = fp.position_mask(1, 0);
  int valid_count = 0;
  for (float v : mask) valid_count += v > 0.5f;
  EXPECT_EQ(valid_count, 1);
}

TEST(Grid, SelfSymMustCenterOnAxis) {
  Instance inst = tiny_instance();
  inst.blocks.push_back(inst.blocks[0]);
  inst.constraints.self_syms.push_back({0, true});
  inst.constraints.self_syms.push_back({1, true});
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 4, 0);  // axis = 2*4+8 = 16 half-cells (x=8)
  // Block 1 must center on the same axis: col = (16-8)/2 = 4.
  EXPECT_TRUE(fp.valid(1, 0, 4, 8));
  EXPECT_FALSE(fp.valid(1, 0, 5, 8));
}

TEST(Grid, PairBeforeAxisRequiresSameRowAndParity) {
  Instance inst = tiny_instance();
  inst.constraints.sym_pairs.push_back({0, 1, true});
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 0);  // center2 = 8, axis still open
  EXPECT_FALSE(fp.vertical_axis2().has_value());
  // Same row, even combined center parity.
  EXPECT_TRUE(fp.valid(1, 0, 10, 0));   // center2 = 28; 8+28 even
  EXPECT_FALSE(fp.valid(1, 0, 10, 3)); // row mismatch
  fp.place(1, 0, 10, 0);
  ASSERT_TRUE(fp.vertical_axis2().has_value());
  EXPECT_EQ(*fp.vertical_axis2(), (8 + 28) / 2);
}

TEST(Grid, HorizontalSymmetryMirrorsRows) {
  Instance inst = tiny_instance();
  inst.blocks.push_back(inst.blocks[0]);
  inst.constraints.self_syms.push_back({2, false});
  inst.constraints.sym_pairs.push_back({0, 1, false});
  GridFloorplan fp(inst, 32);
  fp.place(2, 0, 0, 12);  // horizontal axis at center2 y = 32
  ASSERT_TRUE(fp.horizontal_axis2().has_value());
  fp.place(0, 0, 10, 2);  // cy2 = 12
  // Partner: cy2 = 52 -> row 22, same col.
  EXPECT_TRUE(fp.valid(1, 0, 10, 22));
  EXPECT_FALSE(fp.valid(1, 0, 11, 22));
}

TEST(Grid, AlignGroupPinsRow) {
  Instance inst = tiny_instance();
  inst.constraints.align_groups.push_back({{0, 1}, true});
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 0, 5);
  EXPECT_TRUE(fp.valid(1, 0, 10, 5));
  EXPECT_FALSE(fp.valid(1, 0, 10, 6));
}

TEST(Grid, AnyValidActionDetectsDeadEnd) {
  Instance inst = tiny_instance();
  // Shrink the canvas so the second block cannot fit anywhere after the
  // first occupies the whole grid.
  inst.blocks[0].shapes = {Shape{32, 32}, Shape{32, 32}, Shape{32, 32}};
  inst.blocks[0].area_um2 = 32 * 32;
  GridFloorplan fp(inst, 32);
  EXPECT_TRUE(fp.any_valid_action(0));
  fp.place(0, 0, 0, 0);
  EXPECT_FALSE(fp.any_valid_action(1));
}

TEST(Grid, ResetClearsState) {
  Instance inst = tiny_instance();
  inst.constraints.self_syms.push_back({0, true});
  GridFloorplan fp(inst, 32);
  fp.place(0, 0, 4, 0);
  EXPECT_TRUE(fp.vertical_axis2().has_value());
  fp.reset();
  EXPECT_EQ(fp.num_placed(), 0);
  EXPECT_FALSE(fp.vertical_axis2().has_value());
  EXPECT_FALSE(fp.placed(0));
}

TEST(Grid, RealCircuitEpisodeByGreedyMaskFollowing) {
  // Property: following the position mask greedily always completes an
  // unconstrained episode without overlaps.
  for (const auto& name : {"ota2", "driver", "bias2"}) {
    netlist::Netlist nl;
    for (const auto& e : netlist::circuit_registry()) {
      if (e.name == name) nl = e.make();
    }
    const Instance inst = instance_of(nl);
    GridFloorplan fp(inst, 32);
    for (int b : inst.placement_order()) {
      const auto mask = fp.position_mask(b, 1);
      int cell = -1;
      for (std::size_t i = 0; i < mask.size(); ++i) {
        if (mask[i] > 0.5f) {
          cell = static_cast<int>(i);
          break;
        }
      }
      ASSERT_GE(cell, 0) << name << " block " << b;
      fp.place(b, 1, cell % 32, cell / 32);
    }
    EXPECT_TRUE(fp.complete()) << name;
    const auto rects = fp.rects();
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0) << name;
  }
}

}  // namespace
}  // namespace afp::floorplan
