// Parity tests for the runtime-dispatched kernel tiers: every op with an
// AVX2 micro-kernel path must agree with the naive reference tier — forward
// AND backward — within 1e-4 relative, across odd/even/boundary sizes and
// for every selectable AFP_KERNEL_TIER value.  On hardware without AVX2 the
// avx2 tier resolves to scalar and the checks still run (trivially).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "numeric/ops.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd.hpp"
#include "numeric/tensor.hpp"

namespace afp::num {
namespace {

constexpr float kTol = 1e-4f;

/// Sizes that exercise the vector width boundaries: below, at, above one
/// 8-lane register, and around the 4-row / 16-column blocking.
const int kOddSizes[] = {1, 7, 8, 9, 63, 64, 65};

struct Eval {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

Eval evaluate(const std::function<Tensor(std::vector<Tensor>&)>& fn,
              std::vector<Tensor> inputs) {
  for (auto& t : inputs) t.zero_grad();
  Tensor out = fn(inputs);
  Tensor loss = sum_all(square(out));
  loss.backward();
  Eval e;
  e.out = out.values();
  for (auto& t : inputs) e.grads.push_back(t.grad());
  return e;
}

void expect_close(const std::vector<float>& a, const std::vector<float>& b,
                  const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float bound = kTol * std::max(1.0f, std::abs(a[i]));
    ASSERT_NEAR(a[i], b[i], bound) << what << " at " << i;
  }
}

/// Runs the graph under the naive reference tier, then under every fast
/// tier, and requires matching forwards and gradients.
void tier_parity_check(const std::function<Tensor(std::vector<Tensor>&)>& fn,
                       const std::vector<Tensor>& inputs,
                       const std::string& what) {
  const KernelTier entry = kernel_tier();  // restore the ambient tier after
  set_kernel_tier(KernelTier::kNaive);
  const Eval ref = evaluate(fn, inputs);
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAuto}) {
    set_kernel_tier(tier);
    const Eval got = evaluate(fn, inputs);
    const std::string ctx = what + " [" + kernel_tier_name(kernel_tier()) + "]";
    expect_close(ref.out, got.out, ctx + " forward");
    for (std::size_t i = 0; i < ref.grads.size(); ++i)
      expect_close(ref.grads[i], got.grads[i],
                   ctx + " grad of input " + std::to_string(i));
  }
  set_kernel_tier(entry);
}

std::mt19937_64 rng_fixed() { return std::mt19937_64(4321); }

TEST(KernelTier, ParseAndNames) {
  KernelTier t;
  EXPECT_TRUE(parse_kernel_tier("naive", &t));
  EXPECT_EQ(t, KernelTier::kNaive);
  EXPECT_TRUE(parse_kernel_tier("scalar", &t));
  EXPECT_EQ(t, KernelTier::kScalar);
  EXPECT_TRUE(parse_kernel_tier("avx2", &t));
  EXPECT_EQ(t, KernelTier::kAvx2);
  EXPECT_TRUE(parse_kernel_tier("auto", &t));
  EXPECT_EQ(t, KernelTier::kAuto);
  EXPECT_FALSE(parse_kernel_tier("sse9", &t));
  EXPECT_FALSE(parse_kernel_tier(nullptr, &t));
  EXPECT_STREQ(kernel_tier_name(KernelTier::kScalar), "scalar");
}

TEST(KernelTier, NaiveToggleInterop) {
  // The legacy AFP_NAIVE_KERNELS toggle and the naive tier are one state.
  const KernelTier entry = kernel_tier();
  set_kernel_tier(KernelTier::kNaive);
  EXPECT_TRUE(naive_kernels());
  EXPECT_EQ(kernel_tier(), KernelTier::kNaive);
  set_naive_kernels(false);
  EXPECT_NE(kernel_tier(), KernelTier::kNaive);
  set_naive_kernels(true);
  EXPECT_EQ(kernel_tier(), KernelTier::kNaive);
  set_kernel_tier(KernelTier::kAuto);
  EXPECT_FALSE(naive_kernels());
  // Resolved tier is never kAuto, and avx2 only when the CPU has it.
  EXPECT_NE(kernel_tier(), KernelTier::kAuto);
  if (kernel_tier() == KernelTier::kAvx2) EXPECT_TRUE(cpu_supports_avx2());
  set_kernel_tier(entry);
}

TEST(SimdParity, MatmulOddSizes) {
  auto rng = rng_fixed();
  for (const int m : kOddSizes) {
    for (const int k : kOddSizes) {
      for (const int n : kOddSizes) {
        // Full fwd+bwd covers gemm_nn (forward), gemm_nt (dA) and
        // gemm_tn (dB) at this shape.
        std::vector<Tensor> in{Tensor::randn({m, k}, rng, 1.0f, true),
                               Tensor::randn({k, n}, rng, 1.0f, true)};
        tier_parity_check(
            [](std::vector<Tensor>& v) { return matmul(v[0], v[1]); }, in,
            "matmul " + std::to_string(m) + "x" + std::to_string(k) + "x" +
                std::to_string(n));
      }
    }
  }
}

TEST(SimdParity, LinearAndFusedLinearRelu) {
  auto rng = rng_fixed();
  for (const int b : {1, 7, 33}) {
    for (const int n : kOddSizes) {
      std::vector<Tensor> in{Tensor::randn({b, 24}, rng, 1.0f, true),
                             Tensor::randn({24, n}, rng, 0.5f, true),
                             Tensor::randn({n}, rng, 0.5f, true)};
      const std::string sz = std::to_string(b) + "x24x" + std::to_string(n);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return linear(v[0], v[1], v[2]); }, in,
          "linear " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return linear_relu(v[0], v[1], v[2]); },
          in, "linear_relu " + sz);
    }
  }
}

TEST(SimdParity, ElementwiseOddSizes) {
  auto rng = rng_fixed();
  for (const int r : kOddSizes) {
    for (const int c : {1, 9, 65}) {
      const std::string sz = std::to_string(r) + "x" + std::to_string(c);
      std::vector<Tensor> two{Tensor::randn({r, c}, rng, 1.0f, true),
                              Tensor::randn({r, c}, rng, 1.0f, true)};
      tier_parity_check(
          [](std::vector<Tensor>& v) { return add(v[0], v[1]); }, two,
          "add " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return sub(v[0], v[1]); }, two,
          "sub " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return mul(v[0], v[1]); }, two,
          "mul " + sz);
      std::vector<Tensor> one{Tensor::randn({r, c}, rng, 1.0f, true)};
      tier_parity_check(
          [](std::vector<Tensor>& v) { return relu(v[0]); }, one,
          "relu " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return mul_scalar(v[0], -1.7f); }, one,
          "mul_scalar " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return add_scalar(v[0], 0.3f); }, one,
          "add_scalar " + sz);
      std::vector<Tensor> rowvec{Tensor::randn({r, c}, rng, 1.0f, true),
                                 Tensor::randn({c}, rng, 1.0f, true)};
      tier_parity_check(
          [](std::vector<Tensor>& v) { return add_rowvec(v[0], v[1]); },
          rowvec, "add_rowvec " + sz);
    }
  }
}

TEST(SimdParity, SoftmaxAndReductionsOddSizes) {
  auto rng = rng_fixed();
  for (const int r : {1, 8, 63}) {
    for (const int c : kOddSizes) {
      const std::string sz = std::to_string(r) + "x" + std::to_string(c);
      std::vector<Tensor> in{Tensor::randn({r, c}, rng, 2.0f, true)};
      tier_parity_check(
          [](std::vector<Tensor>& v) { return softmax_rows(v[0]); }, in,
          "softmax_rows " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return log_softmax_rows(v[0]); }, in,
          "log_softmax_rows " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return sum_axis1(v[0]); }, in,
          "sum_axis1 " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return mean_axis0(v[0]); }, in,
          "mean_axis0 " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return sum_all(v[0]); }, in,
          "sum_all " + sz);
      tier_parity_check(
          [](std::vector<Tensor>& v) { return mean_all(v[0]); }, in,
          "mean_all " + sz);
    }
  }
}

TEST(SimdParity, ConvolutionsAcrossBatchSizes) {
  // Covers the tiered GEMM inside the im2col lowering and the batch-split
  // dW accumulation (batched for B > 1, plain contraction for B == 1).
  auto rng = rng_fixed();
  struct Case { int b, ic, h, w, oc, k, stride, pad; };
  const Case cases[] = {
      {1, 1, 5, 5, 2, 3, 1, 0},
      {2, 2, 7, 9, 4, 3, 2, 1},
      {3, 3, 8, 8, 5, 5, 1, 2},
      {5, 4, 9, 7, 3, 3, 1, 1},
  };
  for (const auto& c : cases) {
    std::vector<Tensor> in{
        Tensor::randn({c.b, c.ic, c.h, c.w}, rng, 1.0f, true),
        Tensor::randn({c.oc, c.ic, c.k, c.k}, rng, 0.4f, true),
        Tensor::randn({c.oc}, rng, 0.4f, true)};
    tier_parity_check(
        [c](std::vector<Tensor>& v) {
          return conv2d(v[0], v[1], v[2], c.stride, c.pad);
        },
        in, "conv2d b" + std::to_string(c.b));
  }
  const Case dcases[] = {
      {1, 2, 3, 3, 2, 4, 2, 1},
      {3, 3, 5, 4, 4, 3, 1, 0},
      {4, 1, 4, 6, 2, 5, 2, 2},
  };
  for (const auto& c : dcases) {
    std::vector<Tensor> in{
        Tensor::randn({c.b, c.ic, c.h, c.w}, rng, 1.0f, true),
        Tensor::randn({c.ic, c.oc, c.k, c.k}, rng, 0.4f, true),
        Tensor::randn({c.oc}, rng, 0.4f, true)};
    tier_parity_check(
        [c](std::vector<Tensor>& v) {
          return conv_transpose2d(v[0], v[1], v[2], c.stride, c.pad);
        },
        in, "conv_transpose2d b" + std::to_string(c.b));
  }
}

TEST(SimdParity, TiersAreThreadCountInvariant) {
  // Within each tier, a mixed GEMM + conv + fused-linear + softmax graph
  // must produce bitwise-identical gradients for 1 vs 4 threads (the conv
  // dW path accumulates per image in a fixed order for exactly this).
  auto make_inputs = [] {
    auto rng = rng_fixed();
    return std::vector<Tensor>{
        Tensor::randn({33, 40}, rng, 1.0f, true),
        Tensor::randn({40, 17}, rng, 1.0f, true),
        Tensor::randn({4, 3, 16, 16}, rng, 1.0f, true),
        Tensor::randn({6, 3, 3, 3}, rng, 0.3f, true),
        Tensor::randn({6}, rng, 0.3f, true),
        Tensor::randn({17}, rng, 0.5f, true),
    };
  };
  auto graph = [](std::vector<Tensor>& v) {
    Tensor fused = linear_relu(v[0], v[1], v[5]);
    Tensor sm = softmax_rows(fused);
    Tensor cv = conv2d(v[2], v[3], v[4], 1, 1);
    return add(sum_all(square(sm)), sum_all(square(cv)));
  };
  const KernelTier entry = kernel_tier();
  for (const KernelTier tier : {KernelTier::kScalar, KernelTier::kAvx2}) {
    set_kernel_tier(tier);
    auto run = [&](int threads) {
      set_num_threads(threads);
      auto in = make_inputs();
      for (auto& t : in) t.zero_grad();
      graph(in).backward();
      std::vector<std::vector<float>> grads;
      for (auto& t : in) grads.push_back(t.grad());
      return grads;
    };
    const auto g1 = run(1);
    const auto g4 = run(4);
    set_num_threads(0);
    ASSERT_EQ(g1.size(), g4.size());
    for (std::size_t t = 0; t < g1.size(); ++t) {
      ASSERT_EQ(g1[t].size(), g4[t].size());
      for (std::size_t i = 0; i < g1[t].size(); ++i)
        ASSERT_EQ(g1[t][i], g4[t][i])
            << kernel_tier_name(kernel_tier()) << " input " << t << " coord "
            << i;
    }
  }
  set_kernel_tier(entry);
}

}  // namespace
}  // namespace afp::num
