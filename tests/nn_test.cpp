#include <gtest/gtest.h>

#include <cmath>

#include "nn/distribution.hpp"
#include "nn/layers.hpp"
#include "nn/rgcn_layer.hpp"

namespace afp::nn {
namespace {

std::mt19937_64 rng_fixed() { return std::mt19937_64(7); }

TEST(Linear, ShapesAndParamCount) {
  auto rng = rng_fixed();
  Linear fc(8, 4, rng);
  EXPECT_EQ(fc.parameter_count(), 8 * 4 + 4);
  auto rng2 = rng_fixed();
  num::Tensor x = num::Tensor::randn({3, 8}, rng2);
  num::Tensor y = fc.forward(x);
  EXPECT_EQ(y.shape(), (num::Shape{3, 4}));
}

TEST(Linear, NamedParameters) {
  auto rng = rng_fixed();
  Linear fc(2, 2, rng);
  const auto named = fc.named_parameters("fc");
  EXPECT_TRUE(named.count("fc.weight"));
  EXPECT_TRUE(named.count("fc.bias"));
}

TEST(Conv2d, OutputShape) {
  auto rng = rng_fixed();
  Conv2d conv(6, 16, 3, 1, 1, rng);
  num::Tensor x = num::Tensor::randn({2, 6, 32, 32}, rng);
  EXPECT_EQ(conv.forward(x).shape(), (num::Shape{2, 16, 32, 32}));
  Conv2d conv2(6, 8, 3, 2, 1, rng);
  EXPECT_EQ(conv2.forward(x).shape(), (num::Shape{2, 8, 16, 16}));
}

TEST(ConvTranspose2d, Upsamples) {
  auto rng = rng_fixed();
  ConvTranspose2d deconv(8, 4, 4, 2, 1, rng);
  num::Tensor x = num::Tensor::randn({1, 8, 4, 4}, rng);
  EXPECT_EQ(deconv.forward(x).shape(), (num::Shape{1, 4, 8, 8}));
}

TEST(MLP, ForwardAndTrainability) {
  auto rng = rng_fixed();
  MLP mlp({4, 8, 1}, Activation::kRelu, Activation::kNone, rng);
  num::Tensor x = num::Tensor::randn({5, 4}, rng);
  num::Tensor y = mlp.forward(x);
  EXPECT_EQ(y.shape(), (num::Shape{5, 1}));
  EXPECT_TRUE(y.requires_grad());
  EXPECT_THROW(MLP({3}, Activation::kRelu, Activation::kNone, rng),
               std::invalid_argument);
}

TEST(Activate, AllKinds) {
  num::Tensor x = num::Tensor::from_vector({2}, {-1.0f, 1.0f});
  EXPECT_FLOAT_EQ(activate(x, Activation::kRelu).at(0), 0.0f);
  EXPECT_NEAR(activate(x, Activation::kTanh).at(1), std::tanh(1.0f), 1e-6f);
  EXPECT_NEAR(activate(x, Activation::kSigmoid).at(0),
              1.0f / (1.0f + std::exp(1.0f)), 1e-6f);
  EXPECT_FLOAT_EQ(activate(x, Activation::kNone).at(0), -1.0f);
}

TEST(BuildAdjacency, RowNormalized) {
  // Relation 0: edges 0-1, 1-2; relation 1: empty.
  const auto adj = build_adjacency(3, 2, {{{0, 1}, {1, 2}}, {}});
  ASSERT_EQ(adj.size(), 2u);
  // Node 1 has two neighbours -> entries 0.5 each.
  EXPECT_FLOAT_EQ(adj[0].at(1 * 3 + 0), 0.5f);
  EXPECT_FLOAT_EQ(adj[0].at(1 * 3 + 2), 0.5f);
  // Node 0 has one neighbour -> entry 1.
  EXPECT_FLOAT_EQ(adj[0].at(0 * 3 + 1), 1.0f);
  // Empty relation: all zero.
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(adj[1].at(i), 0.0f);
}

TEST(BuildAdjacency, SelfLoopAllowed) {
  const auto adj = build_adjacency(2, 1, {{{0, 0}}});
  EXPECT_FLOAT_EQ(adj[0].at(0), 1.0f);  // self-loop, degree 1
}

TEST(BuildAdjacency, ValidatesIndices) {
  EXPECT_THROW(build_adjacency(2, 1, {{{0, 5}}}), std::invalid_argument);
  EXPECT_THROW(build_adjacency(2, 2, {{}}), std::invalid_argument);
}

TEST(RGCNLayer, ForwardShapeAndRelationCount) {
  auto rng = rng_fixed();
  RGCNLayer layer(6, 8, 3, Activation::kRelu, rng);
  EXPECT_EQ(layer.num_relations(), 3);
  num::Tensor h = num::Tensor::randn({4, 6}, rng);
  const auto adj = build_adjacency(4, 3, {{{0, 1}}, {{1, 2}}, {}});
  EXPECT_EQ(layer.forward(h, adj).shape(), (num::Shape{4, 8}));
  EXPECT_THROW(layer.forward(h, {adj[0]}), std::invalid_argument);
}

TEST(RGCNLayer, PermutationEquivariance) {
  // Relabeling nodes and permuting features must permute outputs likewise.
  auto rng = rng_fixed();
  RGCNLayer layer(3, 4, 1, Activation::kTanh, rng);
  num::Tensor h = num::Tensor::from_vector(
      {3, 3}, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  const auto adj = build_adjacency(3, 1, {{{0, 1}, {1, 2}}});
  num::Tensor out = layer.forward(h, adj);

  // Permutation: swap nodes 0 and 2 (graph is symmetric under it).
  num::Tensor hp = num::Tensor::from_vector(
      {3, 3}, {0, 0, 1, 0, 1, 0, 1, 0, 0});
  const auto adjp = build_adjacency(3, 1, {{{2, 1}, {1, 0}}});
  num::Tensor outp = layer.forward(hp, adjp);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(out.at(0 * 4 + c), outp.at(2 * 4 + c), 1e-5f);
    EXPECT_NEAR(out.at(1 * 4 + c), outp.at(1 * 4 + c), 1e-5f);
    EXPECT_NEAR(out.at(2 * 4 + c), outp.at(0 * 4 + c), 1e-5f);
  }
}

TEST(RGCNLayer, RelationsAreDistinguished) {
  // The same edge under different relations must produce different
  // outputs (relation-specific weights).
  auto rng = rng_fixed();
  RGCNLayer layer(2, 2, 2, Activation::kNone, rng);
  num::Tensor h = num::Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  const auto adj_r0 = build_adjacency(2, 2, {{{0, 1}}, {}});
  const auto adj_r1 = build_adjacency(2, 2, {{}, {{0, 1}}});
  num::Tensor o0 = layer.forward(h, adj_r0);
  num::Tensor o1 = layer.forward(h, adj_r1);
  bool differs = false;
  for (int i = 0; i < 4; ++i) {
    if (std::abs(o0.at(i) - o1.at(i)) > 1e-6f) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(MaskedCategorical, InvalidActionsNeverSampled) {
  auto rng = rng_fixed();
  num::Tensor logits = num::Tensor::zeros({2, 4});
  // Row 0: only actions 1, 2 valid; row 1: only action 3.
  const std::vector<float> mask{0, 1, 1, 0, 0, 0, 0, 1};
  MaskedCategorical dist(logits, mask);
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = dist.sample(rng);
    EXPECT_TRUE(a[0] == 1 || a[0] == 2);
    EXPECT_EQ(a[1], 3);
  }
  EXPECT_EQ(dist.mode()[1], 3);
}

TEST(MaskedCategorical, LogProbMatchesUniformOverValid) {
  num::Tensor logits = num::Tensor::zeros({1, 4});
  const std::vector<float> mask{1, 1, 0, 0};
  MaskedCategorical dist(logits, mask);
  num::Tensor lp = dist.log_prob({0});
  EXPECT_NEAR(lp.at(0), std::log(0.5f), 1e-5f);
}

TEST(MaskedCategorical, EntropyCountsOnlyValidActions) {
  num::Tensor logits = num::Tensor::zeros({1, 8});
  const std::vector<float> mask{1, 1, 1, 1, 0, 0, 0, 0};
  MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.entropy().at(0), std::log(4.0f), 1e-4f);
}

TEST(MaskedCategorical, AllInvalidRowThrows) {
  num::Tensor logits = num::Tensor::zeros({1, 3});
  EXPECT_THROW(MaskedCategorical(logits, {0, 0, 0}), std::invalid_argument);
}

TEST(MaskedCategorical, GradientFlowsThroughValidLogitsOnly) {
  num::Tensor logits = num::Tensor::zeros({1, 3}, true);
  const std::vector<float> mask{1, 1, 0};
  MaskedCategorical dist(logits, mask);
  num::sum_all(dist.log_prob({0})).backward();
  EXPECT_NE(logits.grad()[0], 0.0f);
  EXPECT_NE(logits.grad()[1], 0.0f);
  EXPECT_FLOAT_EQ(logits.grad()[2], 0.0f);
}

}  // namespace
}  // namespace afp::nn
