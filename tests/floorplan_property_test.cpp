// Property harness for the floorplan encodings (sequence pair and B*-tree):
// for 200 random seeds per representation, every packing must be
// overlap-free, stay inside the positive quadrant within a conservative
// dimension bound, and the Evaluation record returned by the shared metric
// code must match values recomputed independently in this file (bbox area,
// HPWL, dead space).  Move churn must preserve the structural invariants,
// and an optimized (tempering) floorplan must land inside the die outline.
#include <gtest/gtest.h>

#include "metaheur/bstar.hpp"
#include "metaheur/tempering.hpp"
#include "netlist/library.hpp"

namespace afp {
namespace {

constexpr int kSeeds = 200;

floorplan::Instance instance_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

struct RepCase {
  std::string circuit;
  metaheur::Representation rep;
};

std::string case_name(const ::testing::TestParamInfo<RepCase>& info) {
  return info.param.circuit + "_" + metaheur::to_string(info.param.rep);
}

std::vector<geom::Rect> random_packing(const floorplan::Instance& inst,
                                       metaheur::Representation rep,
                                       double spacing, std::mt19937_64& rng) {
  if (rep == metaheur::Representation::kBStarTree) {
    const auto t = metaheur::BStarTree::random(inst.num_blocks(), rng);
    EXPECT_TRUE(t.valid());
    return pack_bstar(inst, t, spacing);
  }
  const auto sp = metaheur::SequencePair::random(inst.num_blocks(), rng);
  return pack(inst, sp, spacing);
}

/// Independent HPWL recomputation (straight from the net definition).
double reference_hpwl(const floorplan::Instance& inst,
                      const std::vector<geom::Rect>& rects) {
  double total = 0.0;
  for (const auto& net : inst.nets) {
    if (net.size() < 2) continue;
    double x0 = 1e300, x1 = -1e300, y0 = 1e300, y1 = -1e300;
    for (int b : net) {
      const auto& r = rects[static_cast<std::size_t>(b)];
      const double cx = r.x + r.w / 2.0, cy = r.y + r.h / 2.0;
      x0 = std::min(x0, cx);
      x1 = std::max(x1, cx);
      y0 = std::min(y0, cy);
      y1 = std::max(y1, cy);
    }
    total += (x1 - x0) + (y1 - y0);
  }
  return total;
}

class PackingProperty : public ::testing::TestWithParam<RepCase> {};

TEST_P(PackingProperty, RandomPackingsAreLegalAndMetricsRecompute) {
  const auto& param = GetParam();
  const auto inst = instance_of(param.circuit);
  const int n = inst.num_blocks();
  // Conservative per-axis bound: every block strung out along one axis.
  auto axis_bound = [&](double spacing) {
    double w = 0.0, h = 0.0;
    for (const auto& b : inst.blocks) {
      double bw = 0.0, bh = 0.0;
      for (const auto& s : b.shapes) {
        bw = std::max(bw, s.w);
        bh = std::max(bh, s.h);
      }
      w += bw + 2.0 * spacing;
      h += bh + 2.0 * spacing;
    }
    return std::pair(w, h);
  };
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) + 1);
    const double spacing = seed % 2 == 0 ? 0.0 : inst.canvas_w / 32.0;
    const auto rects = random_packing(inst, param.rep, spacing, rng);
    ASSERT_EQ(static_cast<int>(rects.size()), n) << "seed " << seed;

    // Overlap-free and inside the positive quadrant.
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0)
        << "seed " << seed;
    double min_x = 1e300, min_y = 1e300, max_r = -1e300, max_t = -1e300;
    for (const auto& r : rects) {
      EXPECT_GE(r.x, -1e-9) << "seed " << seed;
      EXPECT_GE(r.y, -1e-9) << "seed " << seed;
      EXPECT_GT(r.w, 0.0) << "seed " << seed;
      EXPECT_GT(r.h, 0.0) << "seed " << seed;
      min_x = std::min(min_x, r.x);
      min_y = std::min(min_y, r.y);
      max_r = std::max(max_r, r.x + r.w);
      max_t = std::max(max_t, r.y + r.h);
    }
    const auto [bound_w, bound_h] = axis_bound(spacing);
    EXPECT_LE(max_r, bound_w + 1e-9) << "seed " << seed;
    EXPECT_LE(max_t, bound_h + 1e-9) << "seed " << seed;

    // The reported metrics must equal a fresh recomputation.
    const auto ev = floorplan::evaluate_floorplan(inst, rects);
    const double area = (max_r - min_x) * (max_t - min_y);
    EXPECT_DOUBLE_EQ(ev.area, area) << "seed " << seed;
    EXPECT_DOUBLE_EQ(ev.hpwl, reference_hpwl(inst, rects)) << "seed " << seed;
    EXPECT_DOUBLE_EQ(ev.dead_space,
                     area > 0.0 ? 1.0 - inst.total_block_area() / area : 1.0)
        << "seed " << seed;
  }
}

TEST_P(PackingProperty, MoveChurnPreservesInvariants) {
  // 200 seeds of move churn: mutate a state 25 times, repack, and require
  // the same legality invariants (and B*-tree structural validity) to hold.
  const auto& param = GetParam();
  const auto inst = instance_of(param.circuit);
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::mt19937_64 rng(1000 + static_cast<std::uint64_t>(seed));
    std::vector<geom::Rect> rects;
    if (param.rep == metaheur::Representation::kBStarTree) {
      auto t = metaheur::BStarTree::random(inst.num_blocks(), rng);
      for (int m = 0; m < 25; ++m) {
        std::uniform_int_distribution<int> d(0, metaheur::kNumBStarMoves - 1);
        apply_bstar_move(t, static_cast<metaheur::BStarMove>(d(rng)), rng);
      }
      ASSERT_TRUE(t.valid()) << "seed " << seed;
      rects = pack_bstar(inst, t, 0.0);
    } else {
      auto sp = metaheur::SequencePair::random(inst.num_blocks(), rng);
      for (int m = 0; m < 25; ++m) {
        std::uniform_int_distribution<int> d(0, metaheur::kNumMoves - 1);
        apply_move(sp, static_cast<metaheur::Move>(d(rng)), rng);
      }
      rects = pack(inst, sp, 0.0);
    }
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0)
        << "seed " << seed;
    for (const auto& r : rects) {
      EXPECT_GE(r.x, -1e-9) << "seed " << seed;
      EXPECT_GE(r.y, -1e-9) << "seed " << seed;
    }
  }
}

TEST_P(PackingProperty, OptimizedFloorplanFitsTheDie) {
  // After a short tempering run the best packing must fit the die outline
  // (the canvas reserves Rmax slack, so an optimized bbox fits easily);
  // fixed seeds keep this deterministic.
  const auto& param = GetParam();
  const auto inst = instance_of(param.circuit);
  metaheur::PTParams p;
  p.replicas = 4;
  p.iterations = 150;
  p.representation = param.rep;
  for (std::uint64_t seed : {1, 2, 3}) {
    std::mt19937_64 rng(seed);
    const auto res = run_pt(inst, p, rng);
    const auto bb = geom::bounding_box(res.rects);
    EXPECT_LE(bb.w, inst.canvas_w + 1e-9) << "seed " << seed;
    EXPECT_LE(bb.h, inst.canvas_h + 1e-9) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Representations, PackingProperty,
    ::testing::Values(
        RepCase{"ota2", metaheur::Representation::kSequencePair},
        RepCase{"ota2", metaheur::Representation::kBStarTree},
        RepCase{"bias2", metaheur::Representation::kSequencePair},
        RepCase{"bias2", metaheur::Representation::kBStarTree}),
    case_name);

}  // namespace
}  // namespace afp
