#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "rgcn/reward_model.hpp"

namespace afp::rgcn {
namespace {

graphir::CircuitGraph graph_of(const std::string& name,
                               bool constrained = false) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  if (constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  }
  return g;
}

TEST(RewardModel, ArchitectureShapes) {
  std::mt19937_64 rng(1);
  RewardModel model(rng);
  const auto g = graph_of("ota2");
  const auto enc = model.encode(g);
  EXPECT_EQ(enc.node_embeddings.shape(), (num::Shape{8, kEmbeddingDim}));
  EXPECT_EQ(enc.graph_embedding.shape(), (num::Shape{1, kEmbeddingDim}));
  const auto pred = model.predict(g);
  EXPECT_EQ(pred.shape(), (num::Shape{1, 1}));
  EXPECT_TRUE(std::isfinite(pred.item()));
}

TEST(RewardModel, HandlesVaryingGraphSizes) {
  std::mt19937_64 rng(2);
  RewardModel model(rng);
  for (const auto& name : {"ota_small", "bias1", "driver", "bias2"}) {
    const auto g = graph_of(name);
    const auto enc = model.encode(g);
    EXPECT_EQ(enc.node_embeddings.shape()[0], g.num_nodes()) << name;
    EXPECT_TRUE(std::isfinite(model.predict(g).item())) << name;
  }
}

TEST(RewardModel, ConstraintEdgesChangePrediction) {
  std::mt19937_64 rng(3);
  RewardModel model(rng);
  const float free = model.predict(graph_of("ota2", false)).item();
  const float constrained = model.predict(graph_of("ota2", true)).item();
  EXPECT_NE(free, constrained);
}

TEST(RewardModel, EncoderParameterSplit) {
  std::mt19937_64 rng(4);
  RewardModel model(rng);
  const auto enc_params = model.encoder_parameters();
  const auto all_params = model.parameters();
  EXPECT_GT(enc_params.size(), 0u);
  EXPECT_GT(all_params.size(), enc_params.size());  // head params extra
}

TEST(RewardModel, ParameterCountReasonable) {
  std::mt19937_64 rng(5);
  RewardModel model(rng);
  // 4 R-GCN layers x (self + 5 relations + bias) + 5 FC layers.
  EXPECT_GT(model.parameter_count(), 10000);
  EXPECT_LT(model.parameter_count(), 200000);
}

TEST(Dataset, GenerationShapesAndLabels) {
  std::mt19937_64 rng(6);
  const auto data = generate_dataset(1, rng);
  EXPECT_EQ(data.size(), netlist::circuit_registry().size());
  for (const auto& s : data) {
    EXPECT_GT(s.graph.num_nodes(), 0);
    EXPECT_TRUE(std::isfinite(s.reward));
    EXPECT_LE(s.reward, 0.0 + 1e9);  // rewards are negative costs
  }
}

TEST(Training, MseDecreases) {
  std::mt19937_64 rng(7);
  RewardModel model(rng);
  // Tiny synthetic dataset: two circuits with fixed labels.
  std::vector<Sample> data;
  data.push_back({graph_of("ota_small"), -1.0});
  data.push_back({graph_of("bias_small"), -3.0});
  data.push_back({graph_of("ota1"), -2.0});
  const auto stats = train_reward_model(model, data, 30, 3e-3f, rng);
  ASSERT_EQ(stats.size(), 30u);
  EXPECT_LT(stats.back().mse, stats.front().mse);
  EXPECT_LT(stats.back().mse, 1.0);
}

TEST(Training, LearnedModelDiscriminates) {
  std::mt19937_64 rng(8);
  RewardModel model(rng);
  std::vector<Sample> data;
  data.push_back({graph_of("ota_small"), -1.0});
  data.push_back({graph_of("bias2"), -6.0});
  train_reward_model(model, data, 60, 3e-3f, rng);
  const float a = model.predict(data[0].graph).item();
  const float b = model.predict(data[1].graph).item();
  EXPECT_GT(a, b);  // smaller circuit was labeled better
}

}  // namespace
}  // namespace afp::rgcn
