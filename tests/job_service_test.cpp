// JobService tests: batch determinism across thread counts and repeats,
// future/cancellation/progress semantics, per-job seed derivation, the
// wall-clock-budgeted quantum mode's replay property, and the fault
// tolerance policy (error taxonomy, watchdog deadline, retry/backoff,
// checkpoint-resume).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>

#include "core/fault.hpp"
#include "core/job_service.hpp"
#include "core/report.hpp"
#include "metaheur/baselines.hpp"
#include "metaheur/parallel_search.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp::core {
namespace {

/// Resets the process-global fault injector even when a test fails early.
struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    FaultInjector::global().configure(spec);
  }
  ~FaultGuard() { FaultInjector::global().configure(""); }
};

PipelineConfig quick_config(int iterations = 250) {
  PipelineConfig cfg;
  cfg.optimizer = "sa";
  cfg.options = {{"iterations", std::to_string(iterations)}};
  return cfg;
}

std::vector<JobSpec> three_jobs() {
  std::vector<JobSpec> jobs;
  for (const auto* name : {"ota_small", "ota1", "bias_small"}) {
    JobSpec spec;
    spec.name = name;
    for (const auto& e : netlist::circuit_registry()) {
      if (e.name == name) spec.netlist = e.make();
    }
    spec.config = quick_config();
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

void expect_identical(const JobReport& a, const JobReport& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.seed, b.seed) << what;
  EXPECT_EQ(a.result.evaluations, b.result.evaluations) << what;
  EXPECT_EQ(a.result.eval.reward, b.result.eval.reward) << what;
  ASSERT_EQ(a.result.rects.size(), b.result.rects.size()) << what;
  for (std::size_t i = 0; i < a.result.rects.size(); ++i) {
    EXPECT_EQ(a.result.rects[i], b.result.rects[i]) << what << " rect " << i;
  }
}

TEST(JobSeed, StreamsAreStableDistinctAndSeparated) {
  EXPECT_EQ(JobService::job_seed(1, 0), JobService::job_seed(1, 0));
  EXPECT_NE(JobService::job_seed(1, 0), JobService::job_seed(1, 1));
  EXPECT_NE(JobService::job_seed(1, 0), JobService::job_seed(2, 0));
  // Domain separation from the restart streams used inside a job.
  auto restart = metaheur::restart_rng(1, 0);
  EXPECT_NE(JobService::job_seed(1, 0), restart());
}

TEST(JobService, BatchIsThreadCountInvariantAndRepeatable) {
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 77;
  num::set_num_threads(1);
  const auto serial = JobService::run_batch(jobs, opts);
  num::set_num_threads(4);
  const auto pooled = JobService::run_batch(jobs, opts);
  const auto repeat = JobService::run_batch(jobs, opts);
  num::set_num_threads(0);
  ASSERT_EQ(serial.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, JobStatus::kDone) << serial[i].error.message;
    expect_identical(serial[i], pooled[i], "1-vs-4 threads job " + serial[i].name);
    expect_identical(pooled[i], repeat[i], "repeat job " + serial[i].name);
  }
}

TEST(JobService, SubmitFuturesMatchRunBatch) {
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 77;
  const auto direct = JobService::run_batch(jobs, opts);

  std::atomic<int> done{0};
  JobServiceOptions sopts;
  sopts.base_seed = 77;
  sopts.on_progress = [&](const JobProgress& p) {
    if (p.status == JobStatus::kDone) done.fetch_add(1);
  };
  JobService service(sopts);
  std::vector<JobService::Handle> handles;
  for (const auto& job : jobs) handles.push_back(service.submit(job));
  service.wait_all();
  EXPECT_EQ(done.load(), 3);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobReport report = handles[i].report.get();
    EXPECT_EQ(report.id, i);
    expect_identical(report, direct[i], "submit-vs-batch job " + report.name);
  }
}

TEST(JobService, PreCancelledJobReportsCancelled) {
  JobSpec spec;
  spec.name = "cancelled";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config();
  CancelToken cancel;
  cancel.cancel();
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), &cancel, {});
  EXPECT_EQ(report.status, JobStatus::kCancelled);
  EXPECT_TRUE(report.result.rects.empty());
}

TEST(JobService, FailedJobCarriesTheError) {
  JobSpec spec;
  spec.name = "broken";
  spec.netlist = netlist::make_ota_small();
  spec.config.optimizer = "no-such-optimizer";
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), nullptr, {});
  EXPECT_EQ(report.status, JobStatus::kFailed);
  EXPECT_EQ(report.error.kind, JobErrorKind::kInvalidConfig);
  EXPECT_NE(report.error.message.find("no-such-optimizer"),
            std::string::npos);
  EXPECT_EQ(report.attempts, 1);  // invalid_config is not retryable
}

TEST(JobService, TimeBudgetedJobIsReplayableFromQuantumCount) {
  // The wall-clock mode's determinism contract: given the observed number
  // of quanta Q, the result equals the best of quanta 0..Q-1 rerun offline.
  JobSpec spec;
  spec.name = "timed";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(120);
  spec.config.search.base_seed = 21;
  spec.config.search.budget.wall_clock_s = 0.2;
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(5, 0), nullptr, {});
  ASSERT_EQ(report.status, JobStatus::kDone) << report.error.message;
  ASSERT_GE(report.result.quanta, 1);

  auto g = graphir::build_graph(spec.netlist,
                                structrec::recognize(spec.netlist));
  auto inst = floorplan::make_instance(g);
  inst.hpwl_ref = report.result.instance.hpwl_ref;
  auto opt = metaheur::make_optimizer("sa", {{"iterations", "120"}});
  double best = 0.0;
  bool first = true;
  for (long q = 0; q < report.result.quanta; ++q) {
    auto rng = metaheur::restart_rng(21, static_cast<int>(q));
    const auto r = opt->run(inst, {}, rng);
    const double cost = metaheur::sp_cost(inst, r.rects);
    if (first || cost < best) {
      best = cost;
      first = false;
    }
  }
  EXPECT_DOUBLE_EQ(metaheur::sp_cost(report.result.instance,
                                     report.result.rects),
                   best);
}

TEST(RetrySchedule, SeedsAndBackoffAreDeterministic) {
  EXPECT_EQ(JobService::retry_seed(7, 0), 7u);  // attempt 0 = historic seed
  EXPECT_NE(JobService::retry_seed(7, 1), 7u);
  EXPECT_NE(JobService::retry_seed(7, 1), JobService::retry_seed(7, 2));
  EXPECT_EQ(JobService::retry_seed(7, 3), JobService::retry_seed(7, 3));
  RetryPolicy policy;
  policy.backoff_s = 0.01;
  policy.backoff_cap_s = 0.05;
  EXPECT_EQ(JobService::retry_backoff_s(7, 0, policy), 0.0);
  for (int k = 1; k <= 8; ++k) {
    const double b = JobService::retry_backoff_s(7, k, policy);
    EXPECT_EQ(b, JobService::retry_backoff_s(7, k, policy)) << k;
    EXPECT_GT(b, 0.0) << k;
    EXPECT_LE(b, policy.backoff_cap_s) << k;  // capped-exponential
  }
}

TEST(Cancellation, LatencyIsBoundedByOneIteration) {
  // A cancel that lands mid-search must be honored at the next iteration,
  // not the next restart: a pre-cancelled token stops SA after exactly the
  // initial evaluation despite a 4000-move budget.
  const auto nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto inst = floorplan::make_instance(g);
  metaheur::CancelToken token;
  token.cancel();
  metaheur::SAParams p;
  p.iterations = 4000;
  p.stop = &token;
  std::mt19937_64 rng(1);
  const auto r = metaheur::run_sa(inst, p, rng);
  EXPECT_EQ(r.evaluations, 1);
}

TEST(StopPoll, DeadlineArmedAfterConstructionFiresWithinOneStride) {
  // Regression: StopPoll used to cache token->has_deadline() at
  // construction, so a deadline armed after an optimizer's poller was
  // built — a daemon client attaching a timeout to an already-running
  // job — was never checked and the loop ran to its full budget.
  metaheur::CancelToken token;
  metaheur::StopPoll poll(&token);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(poll()) << "un-armed token must never stop the loop";
  }
  token.set_deadline_after(1e-9);  // effectively already expired
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  bool stopped = false;
  // One full clock stride (32) plus one call must be enough to observe it.
  for (int i = 0; i < 33 && !stopped; ++i) stopped = poll();
  EXPECT_TRUE(stopped)
      << "a deadline armed mid-run was not honored within one stride";
}

TEST(StopPoll, ChildTokenObservesParentStopsButArmsPrivately) {
  metaheur::CancelToken parent;
  metaheur::CancelToken job = parent.child();
  metaheur::CancelToken attempt = job.child();
  EXPECT_FALSE(attempt.stop_requested());
  // A private deadline on the attempt token must not leak to the parent.
  attempt.set_deadline_after(1e-9);
  EXPECT_TRUE(attempt.has_deadline());
  EXPECT_FALSE(parent.has_deadline());
  EXPECT_FALSE(job.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(attempt.expired());
  EXPECT_FALSE(parent.expired());
  // Cancel and deadlines propagate down the whole chain.
  parent.set_deadline_after(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(job.expired());
  parent.cancel();
  EXPECT_TRUE(job.cancelled());
  EXPECT_TRUE(attempt.cancelled());
  EXPECT_FALSE(metaheur::CancelToken{}.cancelled());
}

TEST(Watchdog, DeadlineArmedOnRunningJobTerminatesIt) {
  // The daemon path: a client attaches a timeout to a job that is already
  // running.  The handle token is armed mid-run; the optimizer's StopPoll
  // (built before the deadline existed) must still observe it, and the job
  // must end as deadline_exceeded rather than running out its budget.
  JobSpec spec;
  spec.name = "late-deadline";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(50000000);  // minutes of budget if unstopped
  std::atomic<bool> running{false};
  JobServiceOptions opts;
  opts.on_progress = [&](const JobProgress& p) {
    if (p.status == JobStatus::kRunning) running.store(true);
  };
  JobService service(opts);
  auto handle = service.submit(spec);
  // Arm only once the job reported kRunning and had time to enter the
  // optimizer inner loop, so the StopPoll instance predates the deadline.
  while (!running.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  handle.cancel.set_deadline_after(1e-6);
  const JobReport report = handle.report.get();
  EXPECT_EQ(report.status, JobStatus::kDeadlineExceeded)
      << "mid-run deadline was ignored: " << report.error.message;
  EXPECT_EQ(report.error.kind, JobErrorKind::kDeadlineExceeded);
}

TEST(RunBatch, WatchdogFiresForBatchEntries) {
  // Regression: run_batch used to pass a null CancelToken to run_job, so
  // batch entries ran without any stop signalling surface.  A batch of
  // jobs whose config arms the watchdog must time out like single jobs do.
  std::vector<JobSpec> jobs(2);
  for (auto& spec : jobs) {
    spec.name = "batch-overrun";
    spec.netlist = netlist::make_ota_small();
    spec.config = quick_config(50000000);
    spec.config.search.budget.deadline_s = 0.05;
  }
  const auto reports = JobService::run_batch(jobs, {});
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded) << r.error.message;
    EXPECT_TRUE(r.result.rects.empty());
  }
}

TEST(RunBatch, BatchWideCancelStopsEveryEntry) {
  // Each batch entry now holds a real token child of opts.cancel, so one
  // cancel() stops the whole batch; before the fix there was no
  // cancellation path into run_batch at all.
  std::vector<JobSpec> jobs(3);
  for (auto& spec : jobs) {
    spec.name = "batch-cancelled";
    spec.netlist = netlist::make_ota_small();
    spec.config = quick_config(50000000);
  }
  CancelToken cancel;
  cancel.cancel();
  JobServiceOptions opts;
  opts.cancel = &cancel;
  const auto reports = JobService::run_batch(jobs, opts);
  ASSERT_EQ(reports.size(), 3u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.status, JobStatus::kCancelled);
    EXPECT_TRUE(r.result.rects.empty());
  }
}

TEST(JobSpecSeed, ExplicitSeedOverridesDerivation) {
  // The daemon threads the client's seed through JobSpec::seed so a served
  // job is bitwise identical to `afp_cli floorplan --seed N`.
  JobSpec spec;
  spec.name = "seeded";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(120);
  const auto direct = JobService::run_job(spec, 0, 1234, nullptr, {});
  spec.seed = 1234;
  const auto batch = JobService::run_batch({spec}, {});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].seed, 1234u);
  expect_identical(direct, batch[0], "explicit-seed batch vs direct run");
  JobService service{JobServiceOptions{}};
  const auto submitted = service.submit(spec).report.get();
  EXPECT_EQ(submitted.seed, 1234u);
  expect_identical(direct, submitted, "explicit-seed submit vs direct run");
}

TEST(Watchdog, DeadlineOverrunIsTerminalAndDiscardsPartials) {
  JobSpec spec;
  spec.name = "overrun";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(50000000);  // far beyond a 50 ms deadline
  spec.config.search.budget.deadline_s = 0.05;
  spec.config.search.retry.max_retries = 3;  // must NOT be consumed
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), nullptr, {});
  EXPECT_EQ(report.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(report.error.kind, JobErrorKind::kDeadlineExceeded);
  EXPECT_EQ(report.attempts, 1);  // deadline_exceeded is not retryable
  EXPECT_TRUE(report.result.rects.empty());  // partial result discarded
}

TEST(Retry, RecoversFromInjectedFaultDeterministically) {
  FaultGuard guard("throw@0:0");  // job 0, quantum 0, first attempt only
  JobSpec spec;
  spec.name = "flaky";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(150);
  spec.config.search.retry.max_retries = 2;
  spec.config.search.retry.backoff_s = 0.0;  // keep the test fast
  const auto seed = JobService::job_seed(1, 0);
  const auto first = JobService::run_job(spec, 0, seed, nullptr, {});
  EXPECT_EQ(first.status, JobStatus::kDone) << first.error.message;
  EXPECT_EQ(first.attempts, 2);  // attempt 0 faulted, attempt 1 recovered
  const auto again = JobService::run_job(spec, 0, seed, nullptr, {});
  EXPECT_EQ(again.attempts, first.attempts);
  expect_identical(first, again, "retried job repeat");
}

TEST(Retry, ExhaustedRetriesClassifyAsOptimizerFailure) {
  FaultGuard guard("throw@0:0");
  JobSpec spec;
  spec.name = "faulted";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(150);  // max_retries = 0: the fault is final
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), nullptr, {});
  EXPECT_EQ(report.status, JobStatus::kFailed);
  EXPECT_EQ(report.error.kind, JobErrorKind::kOptimizerFailure);
  EXPECT_EQ(report.error.quantum, 0);
  EXPECT_NE(report.error.message.find("injected fault"), std::string::npos);
  EXPECT_EQ(report.attempts, 1);
}

TEST(Checkpoint, ResumeIsBitwiseIdenticalAcrossThreadCounts) {
  auto make_spec = [](int quanta, const std::string& ckpt, bool resume) {
    JobSpec spec;
    spec.name = "ckpt";
    spec.netlist = netlist::make_ota_small();
    spec.config = quick_config(80);
    spec.config.search.base_seed = 21;
    spec.config.search.budget.quanta = quanta;
    spec.config.search.checkpoint_path = ckpt;
    spec.config.search.resume = resume;
    return spec;
  };
  const auto seed = JobService::job_seed(9, 0);
  std::vector<JobReport> resumed_by_threads;
  for (const int threads : {1, 4}) {
    num::set_num_threads(threads);
    const std::string path =
        "ckpt_resume_t" + std::to_string(threads) + ".bin";
    std::remove(path.c_str());
    // Oracle: 6 quanta in one uninterrupted run, no checkpointing.
    const auto full =
        JobService::run_job(make_spec(6, "", false), 0, seed, nullptr, {});
    ASSERT_EQ(full.status, JobStatus::kDone) << full.error.message;
    EXPECT_EQ(full.result.quanta, 6);
    // Interrupted run: stop after 3 quanta, leaving a checkpoint behind.
    const auto half =
        JobService::run_job(make_spec(3, path, false), 0, seed, nullptr, {});
    ASSERT_EQ(half.status, JobStatus::kDone) << half.error.message;
    // Resume to the full budget; must replay quanta 3..5 exactly.
    const auto resumed =
        JobService::run_job(make_spec(6, path, true), 0, seed, nullptr, {});
    ASSERT_EQ(resumed.status, JobStatus::kDone) << resumed.error.message;
    EXPECT_EQ(resumed.result.quanta, 6);
    expect_identical(full, resumed,
                     "resume vs uninterrupted, " + std::to_string(threads) +
                         " threads");
    resumed_by_threads.push_back(resumed);
    std::remove(path.c_str());
  }
  num::set_num_threads(0);
  expect_identical(resumed_by_threads[0], resumed_by_threads[1],
                   "resumed run 1-vs-4 threads");
}

TEST(Checkpoint, MismatchedConfigurationRefusesToResume) {
  const std::string path = "ckpt_mismatch.bin";
  std::remove(path.c_str());
  JobSpec spec;
  spec.name = "ckpt";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(80);
  spec.config.search.base_seed = 21;
  spec.config.search.budget.quanta = 2;
  spec.config.search.checkpoint_path = path;
  const auto seed = JobService::job_seed(9, 0);
  ASSERT_EQ(JobService::run_job(spec, 0, seed, nullptr, {}).status,
            JobStatus::kDone);
  // Same checkpoint, different iteration budget: the identity hash differs,
  // so resuming must fail as invalid_config instead of mixing streams.
  spec.config = quick_config(81);
  spec.config.search.base_seed = 21;
  spec.config.search.budget.quanta = 4;
  spec.config.search.checkpoint_path = path;
  spec.config.search.resume = true;
  const auto report = JobService::run_job(spec, 0, seed, nullptr, {});
  EXPECT_EQ(report.status, JobStatus::kFailed);
  EXPECT_EQ(report.error.kind, JobErrorKind::kInvalidConfig);
  EXPECT_NE(report.error.message.find("different search configuration"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(ReportJson, NonFiniteMetricsBecomeNullAndInternalError) {
  JobSpec spec;
  spec.name = "ota_small";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(60);
  auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), nullptr, {});
  ASSERT_EQ(report.status, JobStatus::kDone) << report.error.message;
  // A degenerate instance that produced non-finite metrics must be flagged
  // by validate_result and serialized as JSON null, never a bare token.
  report.result.eval.hpwl = std::nan("");
  report.result.eval.area = std::numeric_limits<double>::infinity();
  const JobError err = JobService::validate_result(report.result);
  EXPECT_EQ(err.kind, JobErrorKind::kInternal);
  const std::string js =
      report_json(report.result, report.name, report.optimizer,
                  report.options, report.search, report.seed);
  EXPECT_NE(js.find("\"hpwl\": null"), std::string::npos);
  EXPECT_NE(js.find("\"area\": null"), std::string::npos);
  EXPECT_EQ(js.find("nan"), std::string::npos);
  EXPECT_EQ(js.find("inf"), std::string::npos);
}

TEST(ReportJson, EscapesAndShapes) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 3;
  auto reports = JobService::run_batch({jobs[0]}, opts);
  ASSERT_EQ(reports.size(), 1u);
  const std::string single =
      report_json(reports[0].result, reports[0].name, reports[0].optimizer,
                  reports[0].options, reports[0].search, reports[0].seed);
  EXPECT_NE(single.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(single.find("\"search\": {\"restarts\": 1"), std::string::npos);
  EXPECT_NE(single.find("\"optimizer\": \"sa\""), std::string::npos);
  EXPECT_NE(single.find("\"rects\": ["), std::string::npos);
  const std::string batch = batch_report_json(reports, 3, 0.0, 1);
  EXPECT_NE(batch.find("\"batch\": {\"jobs\": 1"), std::string::npos);
  EXPECT_NE(batch.find("\"status\": \"done\""), std::string::npos);
}

}  // namespace
}  // namespace afp::core
