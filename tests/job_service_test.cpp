// JobService tests: batch determinism across thread counts and repeats,
// future/cancellation/progress semantics, per-job seed derivation, and the
// wall-clock-budgeted quantum mode's replay property.
#include <gtest/gtest.h>

#include <atomic>

#include "core/job_service.hpp"
#include "core/report.hpp"
#include "metaheur/parallel_search.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp::core {
namespace {

PipelineConfig quick_config(int iterations = 250) {
  PipelineConfig cfg;
  cfg.optimizer = "sa";
  cfg.options = {{"iterations", std::to_string(iterations)}};
  return cfg;
}

std::vector<JobSpec> three_jobs() {
  std::vector<JobSpec> jobs;
  for (const auto* name : {"ota_small", "ota1", "bias_small"}) {
    JobSpec spec;
    spec.name = name;
    for (const auto& e : netlist::circuit_registry()) {
      if (e.name == name) spec.netlist = e.make();
    }
    spec.config = quick_config();
    jobs.push_back(std::move(spec));
  }
  return jobs;
}

void expect_identical(const JobReport& a, const JobReport& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.seed, b.seed) << what;
  EXPECT_EQ(a.result.evaluations, b.result.evaluations) << what;
  EXPECT_EQ(a.result.eval.reward, b.result.eval.reward) << what;
  ASSERT_EQ(a.result.rects.size(), b.result.rects.size()) << what;
  for (std::size_t i = 0; i < a.result.rects.size(); ++i) {
    EXPECT_EQ(a.result.rects[i], b.result.rects[i]) << what << " rect " << i;
  }
}

TEST(JobSeed, StreamsAreStableDistinctAndSeparated) {
  EXPECT_EQ(JobService::job_seed(1, 0), JobService::job_seed(1, 0));
  EXPECT_NE(JobService::job_seed(1, 0), JobService::job_seed(1, 1));
  EXPECT_NE(JobService::job_seed(1, 0), JobService::job_seed(2, 0));
  // Domain separation from the restart streams used inside a job.
  auto restart = metaheur::restart_rng(1, 0);
  EXPECT_NE(JobService::job_seed(1, 0), restart());
}

TEST(JobService, BatchIsThreadCountInvariantAndRepeatable) {
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 77;
  num::set_num_threads(1);
  const auto serial = JobService::run_batch(jobs, opts);
  num::set_num_threads(4);
  const auto pooled = JobService::run_batch(jobs, opts);
  const auto repeat = JobService::run_batch(jobs, opts);
  num::set_num_threads(0);
  ASSERT_EQ(serial.size(), 3u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].status, JobStatus::kDone) << serial[i].error;
    expect_identical(serial[i], pooled[i], "1-vs-4 threads job " + serial[i].name);
    expect_identical(pooled[i], repeat[i], "repeat job " + serial[i].name);
  }
}

TEST(JobService, SubmitFuturesMatchRunBatch) {
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 77;
  const auto direct = JobService::run_batch(jobs, opts);

  std::atomic<int> done{0};
  JobServiceOptions sopts;
  sopts.base_seed = 77;
  sopts.on_progress = [&](const JobProgress& p) {
    if (p.status == JobStatus::kDone) done.fetch_add(1);
  };
  JobService service(sopts);
  std::vector<JobService::Handle> handles;
  for (const auto& job : jobs) handles.push_back(service.submit(job));
  service.wait_all();
  EXPECT_EQ(done.load(), 3);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const JobReport report = handles[i].report.get();
    EXPECT_EQ(report.id, i);
    expect_identical(report, direct[i], "submit-vs-batch job " + report.name);
  }
}

TEST(JobService, PreCancelledJobReportsCancelled) {
  JobSpec spec;
  spec.name = "cancelled";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config();
  CancelToken cancel;
  cancel.cancel();
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), &cancel, {});
  EXPECT_EQ(report.status, JobStatus::kCancelled);
  EXPECT_TRUE(report.result.rects.empty());
}

TEST(JobService, FailedJobCarriesTheError) {
  JobSpec spec;
  spec.name = "broken";
  spec.netlist = netlist::make_ota_small();
  spec.config.optimizer = "no-such-optimizer";
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(1, 0), nullptr, {});
  EXPECT_EQ(report.status, JobStatus::kFailed);
  EXPECT_NE(report.error.find("no-such-optimizer"), std::string::npos);
}

TEST(JobService, TimeBudgetedJobIsReplayableFromQuantumCount) {
  // The wall-clock mode's determinism contract: given the observed number
  // of quanta Q, the result equals the best of quanta 0..Q-1 rerun offline.
  JobSpec spec;
  spec.name = "timed";
  spec.netlist = netlist::make_ota_small();
  spec.config = quick_config(120);
  spec.config.search.base_seed = 21;
  spec.config.search.budget.wall_clock_s = 0.2;
  const auto report =
      JobService::run_job(spec, 0, JobService::job_seed(5, 0), nullptr, {});
  ASSERT_EQ(report.status, JobStatus::kDone) << report.error;
  ASSERT_GE(report.result.quanta, 1);

  auto g = graphir::build_graph(spec.netlist,
                                structrec::recognize(spec.netlist));
  auto inst = floorplan::make_instance(g);
  inst.hpwl_ref = report.result.instance.hpwl_ref;
  auto opt = metaheur::make_optimizer("sa", {{"iterations", "120"}});
  double best = 0.0;
  bool first = true;
  for (long q = 0; q < report.result.quanta; ++q) {
    auto rng = metaheur::restart_rng(21, static_cast<int>(q));
    const auto r = opt->run(inst, {}, rng);
    const double cost = metaheur::sp_cost(inst, r.rects);
    if (first || cost < best) {
      best = cost;
      first = false;
    }
  }
  EXPECT_DOUBLE_EQ(metaheur::sp_cost(report.result.instance,
                                     report.result.rects),
                   best);
}

TEST(ReportJson, EscapesAndShapes) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  const auto jobs = three_jobs();
  JobServiceOptions opts;
  opts.base_seed = 3;
  auto reports = JobService::run_batch({jobs[0]}, opts);
  ASSERT_EQ(reports.size(), 1u);
  const std::string single =
      report_json(reports[0].result, reports[0].name, reports[0].optimizer,
                  reports[0].options, reports[0].search, reports[0].seed);
  EXPECT_NE(single.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(single.find("\"search\": {\"restarts\": 1"), std::string::npos);
  EXPECT_NE(single.find("\"optimizer\": \"sa\""), std::string::npos);
  EXPECT_NE(single.find("\"rects\": ["), std::string::npos);
  const std::string batch = batch_report_json(reports, 3, 0.0, 1);
  EXPECT_NE(batch.find("\"batch\": {\"jobs\": 1"), std::string::npos);
  EXPECT_NE(batch.find("\"status\": \"done\""), std::string::npos);
}

}  // namespace
}  // namespace afp::core
