// Tests for the congestion-mask extension (paper Section VI future work):
// the RUDY estimate, the 7-channel observation, and end-to-end PPO
// training with the extended observation.
#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "rl/agent.hpp"

namespace afp {
namespace {

floorplan::Instance instance_of(const std::string& name) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

TEST(CongestionMask, EmptyGridHasNoDemand) {
  const auto inst = instance_of("ota2");
  floorplan::GridFloorplan fp(inst, 32);
  for (float v : fp.congestion_mask()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(CongestionMask, DemandAppearsBetweenConnectedBlocks) {
  const auto inst = instance_of("ota_small");
  floorplan::GridFloorplan fp(inst, 32);
  const auto order = inst.placement_order();
  // Place two connected blocks at opposite corners.
  fp.place(order[0], 1, 0, 0);
  const auto [wg, hg] = fp.footprint(order[1], 1);
  fp.place(order[1], 1, 32 - wg, 32 - hg);
  const auto m = fp.congestion_mask();
  float mx = 0.0f, total = 0.0f;
  for (float v : m) {
    mx = std::max(mx, v);
    total += v;
  }
  EXPECT_FLOAT_EQ(mx, 1.0f);  // normalized
  EXPECT_GT(total, 1.0f);     // demand spread over the bbox
  // A net bbox spanning the whole canvas touches the middle of the grid.
  EXPECT_GT(m[16 * 32 + 16], 0.0f);
}

TEST(CongestionMask, ValuesInUnitInterval) {
  const auto inst = instance_of("driver");
  floorplan::GridFloorplan fp(inst, 32);
  for (int b : inst.placement_order()) {
    const auto mask = fp.position_mask(b, 1);
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i] > 0.5f) {
        fp.place(b, 1, static_cast<int>(i) % 32, static_cast<int>(i) / 32);
        break;
      }
    }
    for (float v : fp.congestion_mask()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(CongestionEnv, SeventhChannelAppended) {
  env::EnvConfig cfg;
  cfg.use_congestion_mask = true;
  env::FloorplanEnv environment(instance_of("ota_small"), cfg);
  EXPECT_EQ(environment.mask_channels(), 7);
  auto obs = environment.reset();
  EXPECT_EQ(obs.masks.size(), static_cast<std::size_t>(7 * 32 * 32));
  // Base channels unchanged; channel 6 initially zero (nothing placed).
  for (int i = 6 * 32 * 32; i < 7 * 32 * 32; ++i) {
    EXPECT_FLOAT_EQ(obs.masks[static_cast<std::size_t>(i)], 0.0f);
  }
  // After two placements the congestion channel lights up.
  for (int step = 0; step < 2; ++step) {
    int a = -1;
    for (std::size_t i = 0; i < obs.action_mask.size(); ++i) {
      if (obs.action_mask[i] > 0.5f) {
        a = static_cast<int>(i);
        break;
      }
    }
    obs = environment.step(a).obs;
  }
  float total = 0.0f;
  for (int i = 6 * 32 * 32; i < 7 * 32 * 32; ++i) {
    total += obs.masks[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(total, 0.0f);
}

TEST(CongestionEnv, DefaultConfigKeepsSixChannels) {
  env::FloorplanEnv environment(instance_of("ota_small"));
  EXPECT_EQ(environment.mask_channels(), 6);
  EXPECT_EQ(environment.reset().masks.size(),
            static_cast<std::size_t>(6 * 32 * 32));
}

TEST(CongestionTraining, SevenChannelPolicyTrains) {
  std::mt19937_64 rng(1);
  rgcn::RewardModel encoder(rng);
  rl::PolicyConfig pc = rl::PolicyConfig::fast();
  pc.in_channels = 7;
  rl::ActorCritic policy(pc, rng);
  env::EnvConfig ecfg;
  ecfg.use_congestion_mask = true;

  auto nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  const auto task = rl::make_task(encoder, std::move(g));
  rl::PPOConfig cfg;
  cfg.n_envs = 2;
  cfg.n_steps = 8;
  cfg.minibatch = 8;
  cfg.epochs = 1;
  rl::PPOTrainer trainer(policy, {task}, cfg, ecfg);
  const auto stats = trainer.iterate(rng);
  EXPECT_GT(stats.episodes, 0);
  EXPECT_TRUE(std::isfinite(stats.policy_loss));

  const auto ep = rl::run_episode(policy, task, rng, true, ecfg);
  EXPECT_EQ(ep.rects.size(), 3u);
}

TEST(CongestionTraining, ChannelMismatchRejected) {
  std::mt19937_64 rng(2);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);  // 6 channels
  env::EnvConfig ecfg;
  ecfg.use_congestion_mask = true;  // 7 channels
  auto nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  rl::PPOConfig cfg;
  cfg.n_envs = 1;
  cfg.n_steps = 4;
  rl::PPOTrainer trainer(policy, {rl::make_task(encoder, std::move(g))}, cfg,
                         ecfg);
  EXPECT_THROW(trainer.iterate(rng), std::logic_error);
}

}  // namespace
}  // namespace afp
