#include <gtest/gtest.h>

#include "metaheur/baselines.hpp"
#include "netlist/library.hpp"

namespace afp::metaheur {
namespace {

floorplan::Instance instance_of(const netlist::Netlist& nl,
                                bool constrained = false) {
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  if (constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  }
  return floorplan::make_instance(g);
}

TEST(SequencePair, InitialAndRandomAreValidPermutations) {
  std::mt19937_64 rng(1);
  for (const SequencePair sp :
       {SequencePair::initial(7), SequencePair::random(7, rng)}) {
    EXPECT_EQ(sp.size(), 7);
    std::vector<int> s1 = sp.s1, s2 = sp.s2;
    std::sort(s1.begin(), s1.end());
    std::sort(s2.begin(), s2.end());
    for (int i = 0; i < 7; ++i) {
      EXPECT_EQ(s1[static_cast<std::size_t>(i)], i);
      EXPECT_EQ(s2[static_cast<std::size_t>(i)], i);
    }
    for (int s : sp.shapes) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, floorplan::kNumShapes);
    }
  }
}

TEST(SequencePair, PackNeverOverlaps) {
  std::mt19937_64 rng(2);
  const auto inst = instance_of(netlist::make_bias2());
  for (int trial = 0; trial < 50; ++trial) {
    const auto sp = SequencePair::random(inst.num_blocks(), rng);
    const auto rects = pack(inst, sp);
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(rects), 0.0);
  }
}

TEST(SequencePair, PackKnownArrangements) {
  // Two blocks: (ab, ab) -> side by side; (ab, ba) -> stacked.
  auto inst = instance_of(netlist::make_ota_small());
  inst.blocks.resize(2);
  SequencePair sp = SequencePair::initial(2);
  auto rects = pack(inst, sp);
  EXPECT_GT(rects[1].x, rects[0].x - 1e-12);
  EXPECT_DOUBLE_EQ(rects[1].y, 0.0);
  sp.s2 = {1, 0};
  rects = pack(inst, sp);
  // a above b: block 0 sits on top of block 1.
  EXPECT_DOUBLE_EQ(rects[0].x, 0.0);
  EXPECT_GE(rects[0].y, rects[1].top() - 1e-12);
}

TEST(SequencePair, SpacingReservesRoutingRoom) {
  const auto inst = instance_of(netlist::make_ota1());
  const auto sp = SequencePair::initial(inst.num_blocks());
  const auto tight = pack(inst, sp, 0.0);
  const auto spaced = pack(inst, sp, 1.0);
  EXPECT_GT(geom::bounding_box(spaced).area(),
            geom::bounding_box(tight).area());
  // Original rect sizes preserved.
  for (std::size_t i = 0; i < tight.size(); ++i) {
    EXPECT_DOUBLE_EQ(tight[i].w, spaced[i].w);
    EXPECT_DOUBLE_EQ(tight[i].h, spaced[i].h);
  }
}

TEST(SequencePair, MovesPreservePermutations) {
  std::mt19937_64 rng(3);
  SequencePair sp = SequencePair::random(9, rng);
  for (int m = 0; m < kNumMoves; ++m) {
    for (int k = 0; k < 20; ++k) {
      apply_move(sp, static_cast<Move>(m), rng);
    }
  }
  std::vector<int> s1 = sp.s1, s2 = sp.s2;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(s1[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(s2[static_cast<std::size_t>(i)], i);
  }
}

TEST(SpCost, ViolationCostsMoreThanCompliance) {
  auto inst = instance_of(netlist::make_ota_small());
  inst.constraints.sym_pairs.push_back({1, 2, true});
  const std::vector<geom::Rect> ok{{0, 0, 4, 4}, {4, 0, 4, 4}, {8, 0, 4, 4}};
  const std::vector<geom::Rect> bad{{0, 0, 4, 4}, {4, 1, 4, 4}, {8, 3, 4, 4}};
  EXPECT_LT(sp_cost(inst, ok), sp_cost(inst, bad));
}

struct BaselineCase {
  std::string name;
  std::function<BaselineResult(const floorplan::Instance&, std::mt19937_64&)>
      run;
};

class BaselineSuite : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineSuite, ProducesValidFloorplanOnAllCircuits) {
  std::mt19937_64 rng(11);
  for (const auto& cname : {"ota1", "rs_latch"}) {
    netlist::Netlist nl;
    for (const auto& e : netlist::circuit_registry()) {
      if (e.name == cname) nl = e.make();
    }
    const auto inst = instance_of(nl);
    const auto res = GetParam().run(inst, rng);
    ASSERT_EQ(static_cast<int>(res.rects.size()), inst.num_blocks());
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
    EXPECT_GT(res.runtime_s, 0.0);
    EXPECT_GT(res.evaluations, 0);
    EXPECT_TRUE(res.eval.constraints_ok);
    EXPECT_LT(res.eval.dead_space, 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, BaselineSuite,
    ::testing::Values(
        BaselineCase{"sa",
                     [](const floorplan::Instance& i, std::mt19937_64& r) {
                       SAParams p;
                       p.iterations = 400;
                       return run_sa(i, p, r);
                     }},
        BaselineCase{"ga",
                     [](const floorplan::Instance& i, std::mt19937_64& r) {
                       GAParams p;
                       p.population = 10;
                       p.generations = 10;
                       return run_ga(i, p, r);
                     }},
        BaselineCase{"pso",
                     [](const floorplan::Instance& i, std::mt19937_64& r) {
                       PSOParams p;
                       p.particles = 8;
                       p.iterations = 10;
                       return run_pso(i, p, r);
                     }},
        BaselineCase{"rlsa",
                     [](const floorplan::Instance& i, std::mt19937_64& r) {
                       RLSAParams p;
                       p.iterations = 400;
                       return run_rlsa(i, p, r);
                     }},
        BaselineCase{"rlsp",
                     [](const floorplan::Instance& i, std::mt19937_64& r) {
                       RLSPParams p;
                       p.episodes = 10;
                       p.steps_per_episode = 20;
                       return run_rlsp(i, p, r);
                     }}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) {
      return info.param.name;
    });

TEST(SA, LongerScheduleDoesNotHurt) {
  const auto inst = instance_of(netlist::make_ota2());
  std::mt19937_64 r1(5), r2(5);
  SAParams small;
  small.iterations = 50;
  SAParams big;
  big.iterations = 3000;
  const double c_small = -run_sa(inst, small, r1).eval.reward;
  const double c_big = -run_sa(inst, big, r2).eval.reward;
  EXPECT_LE(c_big, c_small + 0.5);
}

TEST(SA, BeatsRandomPacking) {
  const auto inst = instance_of(netlist::make_bias1());
  std::mt19937_64 rng(7);
  const double spacing = inst.canvas_w / 32.0;  // the auto default
  double random_cost = 0.0;
  for (int k = 0; k < 5; ++k) {
    random_cost +=
        sp_cost(inst, pack(inst, SequencePair::random(inst.num_blocks(), rng),
                           spacing));
  }
  random_cost /= 5.0;
  SAParams p;
  p.iterations = 2000;
  const auto res = run_sa(inst, p, rng);
  EXPECT_LT(sp_cost(inst, res.rects), random_cost);
}

TEST(EstimateHpwlMin, PositiveAndBelowRandom) {
  const auto inst = instance_of(netlist::make_ota2());
  std::mt19937_64 rng(13);
  const double ref = estimate_hpwl_min(inst, rng, 800);
  EXPECT_GT(ref, 0.0);
  std::mt19937_64 rng2(14);
  const double random_hpwl = floorplan::hpwl_of(
      inst, pack(inst, SequencePair::random(inst.num_blocks(), rng2)));
  EXPECT_LE(ref, random_hpwl + 1e-9);
}

}  // namespace
}  // namespace afp::metaheur
