#include <gtest/gtest.h>

#include "env/vec_env.hpp"
#include "netlist/library.hpp"

namespace afp::env {
namespace {

floorplan::Instance instance_of(const std::string& name,
                                bool constrained = false) {
  netlist::Netlist nl;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == name) nl = e.make();
  }
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  if (constrained) {
    graphir::apply_constraints(g, graphir::default_constraints(g));
  }
  return floorplan::make_instance(g);
}

/// First valid flat action per the observation's action mask.
int first_valid(const Observation& obs) {
  for (std::size_t i = 0; i < obs.action_mask.size(); ++i) {
    if (obs.action_mask[i] > 0.5f) return static_cast<int>(i);
  }
  return -1;
}

TEST(Env, ActionEncodingRoundTrip) {
  FloorplanEnv env(instance_of("ota_small"));
  for (int a : {0, 31, 1023, 1024, 2047, 3071}) {
    EXPECT_EQ(env.encode(env.decode(a)), a);
  }
  EXPECT_THROW(env.decode(-1), std::out_of_range);
  EXPECT_THROW(env.decode(3072), std::out_of_range);
  EXPECT_EQ(env.action_space(), 3072);
}

TEST(Env, ResetProducesConsistentObservation) {
  FloorplanEnv env(instance_of("ota1"));
  const Observation obs = env.reset();
  EXPECT_FALSE(obs.done);
  EXPECT_EQ(obs.steps_done, 0);
  EXPECT_GE(obs.current_block, 0);
  EXPECT_EQ(obs.masks.size(), static_cast<std::size_t>(6 * 32 * 32));
  EXPECT_EQ(obs.action_mask.size(), static_cast<std::size_t>(3 * 32 * 32));
  // Empty grid: occupancy all zero; some actions valid.
  for (int i = 0; i < 32 * 32; ++i) EXPECT_FLOAT_EQ(obs.masks[i], 0.0f);
  EXPECT_GE(first_valid(obs), 0);
  // The fp channels in the observation equal the action mask.
  const std::size_t plane = 32 * 32;
  for (std::size_t i = 0; i < 3 * plane; ++i) {
    EXPECT_FLOAT_EQ(obs.masks[3 * plane + i], obs.action_mask[i]);
  }
}

TEST(Env, CurrentBlockFollowsDecreasingAreaOrder) {
  const auto inst = instance_of("bias1");
  FloorplanEnv env(inst);
  Observation obs = env.reset();
  const auto order = inst.placement_order();
  EXPECT_EQ(obs.current_block, order[0]);
  const auto res = env.step(first_valid(obs));
  EXPECT_EQ(res.obs.current_block, order[1]);
}

TEST(Env, FullEpisodeTerminatesWithEvaluation) {
  FloorplanEnv env(instance_of("ota2"));
  Observation obs = env.reset();
  int steps = 0;
  StepResult last;
  while (!obs.done) {
    const int a = first_valid(obs);
    ASSERT_GE(a, 0);
    last = env.step(a);
    obs = last.obs;
    ++steps;
    ASSERT_LE(steps, 8);
  }
  EXPECT_EQ(steps, 8);  // one step per block
  EXPECT_TRUE(last.done);
  ASSERT_TRUE(last.final_eval.has_value());
  EXPECT_FALSE(last.violated);
  EXPECT_TRUE(last.final_eval->constraints_ok);
  EXPECT_GT(last.final_eval->area, 0.0);
}

TEST(Env, IntermediateRewardMatchesEq4) {
  // Placing the second block far away must yield a lower intermediate
  // reward than abutting it.
  const auto inst = instance_of("ota_small");
  FloorplanEnv near_env(inst), far_env(inst);
  Observation obs_n = near_env.reset();
  Observation obs_f = far_env.reset();
  (void)near_env.step(first_valid(obs_n));
  (void)far_env.step(first_valid(obs_f));

  // Choose, for the second block, the nearest vs farthest valid cell.
  obs_n = near_env.reset();  // restart to align states
  obs_f = far_env.reset();
  auto run2 = [&](FloorplanEnv& e, bool nearest) {
    Observation o = e.reset();
    (void)e.step(first_valid(o));
    o.masks.clear();
    const Observation cur = [&] {
      Observation tmp = e.reset();
      StepResult r = e.step(first_valid(tmp));
      return r.obs;
    }();
    int pick = -1;
    if (nearest) {
      pick = first_valid(cur);
    } else {
      for (int i = static_cast<int>(cur.action_mask.size()) - 1; i >= 0; --i) {
        if (cur.action_mask[static_cast<std::size_t>(i)] > 0.5f) {
          pick = i;
          break;
        }
      }
    }
    return e.step(pick).reward;
  };
  EXPECT_GT(run2(near_env, true), run2(far_env, false));
}

TEST(Env, InvalidActionYieldsViolationPenalty) {
  FloorplanEnv env(instance_of("ota_small"));
  Observation obs = env.reset();
  (void)env.step(first_valid(obs));
  // Re-take the same action: cell now occupied -> violation path.
  obs = env.reset();
  const int a = first_valid(obs);
  (void)env.step(a);
  const auto res = env.step(a);
  EXPECT_TRUE(res.done);
  EXPECT_TRUE(res.violated);
  EXPECT_LE(res.reward, -50.0 + 1e-9);
}

TEST(Env, StepAfterDoneThrows) {
  FloorplanEnv env(instance_of("ota_small"));
  Observation obs = env.reset();
  while (!obs.done) {
    obs = env.step(first_valid(obs)).obs;
  }
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(Env, ConstrainedEpisodeMasksRespectSymmetry) {
  FloorplanEnv env(instance_of("ota2", /*constrained=*/true));
  Observation obs = env.reset();
  int guard = 0;
  bool finished_clean = false;
  while (!obs.done && guard++ < 16) {
    const int a = first_valid(obs);
    if (a < 0) break;
    const auto res = env.step(a);
    if (res.done && res.final_eval) {
      finished_clean = res.final_eval->constraints_ok;
    }
    obs = res.obs;
  }
  // Mask-following either completes with constraints intact or dead-ends
  // with the -50 penalty; it must never finish with violated constraints.
  if (finished_clean) {
    SUCCEED();
  } else {
    EXPECT_TRUE(obs.done);
  }
}

TEST(Env, MaskChannelsCanBeDisabled) {
  EnvConfig cfg;
  cfg.use_wire_mask = false;
  cfg.use_dead_space_mask = false;
  FloorplanEnv env(instance_of("ota_small"), cfg);
  Observation obs = env.reset();
  (void)env.step(first_valid(obs));
  obs = env.reset();
  const auto res = env.step(first_valid(obs));
  const std::size_t plane = 32 * 32;
  for (std::size_t i = 0; i < plane; ++i) {
    EXPECT_FLOAT_EQ(res.obs.masks[plane + i], 0.0f);      // fw off
    EXPECT_FLOAT_EQ(res.obs.masks[2 * plane + i], 0.0f);  // fds off
  }
}

TEST(Env, SetInstanceSwapsCircuit) {
  FloorplanEnv env(instance_of("ota_small"));
  EXPECT_EQ(env.episode_length(), 3);
  env.set_instance(instance_of("bias1"));
  EXPECT_EQ(env.episode_length(), 9);
  const Observation obs = env.reset();
  EXPECT_FALSE(obs.done);
}

TEST(VecEnv, AutoResetAndEpisodeHook) {
  int hook_calls = 0;
  VecEnv venv(
      2, [](int) { return instance_of("ota_small"); });
  venv.on_episode_end = [&hook_calls](int, const StepResult&) {
    ++hook_calls;
    return std::optional<floorplan::Instance>(instance_of("bias_small"));
  };
  auto obs = venv.reset_all();
  ASSERT_EQ(obs.size(), 2u);
  // Drive env 0 to completion.
  int steps = 0;
  Observation cur = obs[0];
  while (steps++ < 10) {
    const auto res = venv.step(0, first_valid(cur));
    cur = res.obs;
    if (res.done) break;
  }
  EXPECT_EQ(hook_calls, 1);
  // After the hook, env 0 hosts the replacement circuit.
  EXPECT_EQ(venv.env(0).episode_length(), 3);
  EXPECT_EQ(venv.env(0).instance().name, "bias_small");
}

}  // namespace
}  // namespace afp::env
