// The afpd service stack, bottom-up: the strict JSON parser, the frame
// codec, the admission policy, and end-to-end sessions against an
// in-process Server on a unix socket — submit/result bitwise parity with
// the JobService::run_job path, cancellation, mid-run deadlines, protocol
// robustness against malformed input, quotas, priorities, drain, and
// fault-injection isolation between sessions.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/job_service.hpp"
#include "core/report.hpp"
#include "ingest/scenario.hpp"
#include "netlist/library.hpp"
#include "service/admission.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace {

using namespace afp;
using service::AdmissionConfig;
using service::AdmissionQueue;
using service::Client;
using service::FrameReader;
using service::JsonError;
using service::JsonValue;
using service::ProtocolError;
using service::ServerError;

// ------------------------------------------------------------ JSON parser ---

TEST(Json, ParsesScalarsStringsAndNesting) {
  const JsonValue v = service::json_parse(
      R"({"a": 1.5, "b": [true, false, null], "s": "q\"\\\nA"})");
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  ASSERT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_TRUE(v.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("b").as_array()[2].is_null());
  EXPECT_EQ(v.at("s").as_string(), "q\"\\\nA");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue v = service::json_parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                      // empty
      "{",                     // unterminated
      "{\"a\": 1,}",           // trailing comma
      "{\"a\": 1} x",          // trailing garbage
      "{\"a\": 1 \"b\": 2}",   // missing comma
      "{\"a\": 01}",           // leading zero
      "{\"a\": 1.}",           // trailing dot
      "{\"a\": nan}",          // bare nan
      "{\"a\": +1}",           // leading plus
      "{\"a\": 'x'}",          // single quotes
      "{\"a\": \"\x01\"}",     // raw control char in string
      "{\"a\": 1, \"a\": 2}",  // duplicate key
      "[1, 2",                 // unterminated array
  };
  for (const char* doc : bad) {
    EXPECT_THROW(service::json_parse(doc), JsonError) << doc;
  }
}

TEST(Json, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(service::json_parse(deep + "1"), JsonError);
  EXPECT_NO_THROW(service::json_parse("[[[[[1]]]]]"));
}

TEST(Json, IntegerNarrowingIsExact) {
  EXPECT_EQ(service::json_parse("7").as_uint("x"), 7u);
  EXPECT_THROW(service::json_parse("7.25").as_uint("x"), JsonError);
  EXPECT_THROW(service::json_parse("-1").as_uint("x"), JsonError);
  EXPECT_EQ(service::json_parse("-3").as_int("x"), -3);
  EXPECT_THROW(service::json_parse("1e30").as_int("x"), JsonError);
}

// ------------------------------------------------------------ frame codec ---

TEST(Frames, RoundTripsThroughIncrementalFeeds) {
  const std::string payload = R"({"type": "ping"})";
  const std::string frame = service::encode_frame(payload);
  FrameReader reader;
  // Byte at a time: next() must return false until the last byte lands.
  std::string out;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    EXPECT_FALSE(reader.next(&out));
    reader.feed(frame.data() + i, 1);
  }
  ASSERT_TRUE(reader.next(&out));
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(reader.idle());
}

TEST(Frames, DecodesSeveralFramesFromOneFeed) {
  const std::string two =
      service::encode_frame("{\"a\": 1}") + service::encode_frame("{}");
  FrameReader reader;
  reader.feed(two.data(), two.size());
  std::string out;
  ASSERT_TRUE(reader.next(&out));
  EXPECT_EQ(out, "{\"a\": 1}");
  ASSERT_TRUE(reader.next(&out));
  EXPECT_EQ(out, "{}");
  EXPECT_FALSE(reader.next(&out));
}

TEST(Frames, JunkAndBadPrefixesAreProtocolErrors) {
  std::string out;
  {
    // ASCII junk: "GET " decodes as a ~1.2 GB length prefix.
    FrameReader reader;
    const std::string junk = "GET / HTTP/1.1\r\n\r\n";
    reader.feed(junk.data(), junk.size());
    EXPECT_THROW(reader.next(&out), ProtocolError);
  }
  {
    // Zero-length frames carry no payload and are never sent.
    FrameReader reader;
    const char zero[4] = {0, 0, 0, 0};
    reader.feed(zero, 4);
    EXPECT_THROW(reader.next(&out), ProtocolError);
  }
  {
    // A prefix over the cap is rejected as soon as it completes, long
    // before any payload bytes are buffered.
    FrameReader reader;
    const char big[4] = {'\x7f', '\x00', '\x00', '\x00'};
    reader.feed(big, 3);
    EXPECT_FALSE(reader.next(&out));
    reader.feed(big + 3, 1);
    EXPECT_THROW(reader.next(&out), ProtocolError);
  }
  EXPECT_THROW(
      service::encode_frame(std::string(service::kMaxFrameBytes + 1, 'x')),
      ProtocolError);
}

TEST(Frames, TruncationIsVisibleViaIdle) {
  FrameReader reader;
  const std::string frame = service::encode_frame("{\"a\": 1}");
  reader.feed(frame.data(), frame.size() - 2);
  std::string out;
  EXPECT_FALSE(reader.next(&out));
  EXPECT_FALSE(reader.idle());  // a disconnect now is "mid-frame"
}

TEST(Frames, ResultReportSliceIsVerbatim) {
  const std::string report = "{\n  \"schema_version\": 1,\n  \"x\": [1]\n}";
  const std::string payload =
      "{\"type\": \"result\", \"job\": 3, \"name\": \"n\", \"status\": "
      "\"done\", \"seed\": 7, \"runtime_s\": 0.5, \"attempts\": 1, "
      "\"error\": null, \"report\": " +
      report + "}";
  EXPECT_EQ(service::result_report_slice(payload), report);
  const std::string unfinished =
      "{\"type\": \"result\", \"job\": 3, \"error\": null, \"report\": "
      "null}";
  EXPECT_EQ(service::result_report_slice(unfinished), "null");
  EXPECT_EQ(service::result_report_slice("{\"type\": \"pong\"}"), "");
}

// ------------------------------------------------------------- admission ---

TEST(Admission, InflightCapParksAndQuotaRejects) {
  AdmissionConfig cfg;
  cfg.max_inflight = 2;
  cfg.per_session = 3;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  std::string why;
  EXPECT_EQ(q.admit(1, 10, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 11, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 12, 0, &why), AdmissionQueue::Verdict::kParked);
  // Over the per-session quota: rejected outright, never parked.
  EXPECT_EQ(q.admit(1, 13, 0, &why), AdmissionQueue::Verdict::kRejected);
  EXPECT_NE(why.find("quota"), std::string::npos) << why;
  EXPECT_EQ(q.outstanding(), 3u);
}

TEST(Admission, ReleaseLaunchesByPriorityThenArrival) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  cfg.per_session = 16;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  std::string why;
  EXPECT_EQ(q.admit(1, 1, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 2, 0, &why), AdmissionQueue::Verdict::kParked);
  EXPECT_EQ(q.admit(1, 3, 5, &why), AdmissionQueue::Verdict::kParked);
  EXPECT_EQ(q.admit(1, 4, 5, &why), AdmissionQueue::Verdict::kParked);
  // Highest priority first; FIFO within a priority; one slot per release.
  EXPECT_EQ(q.release(1), std::vector<std::uint64_t>{3});
  EXPECT_EQ(q.release(3), std::vector<std::uint64_t>{4});
  EXPECT_EQ(q.release(4), std::vector<std::uint64_t>{2});
  EXPECT_EQ(q.release(2), std::vector<std::uint64_t>{});
  EXPECT_EQ(q.outstanding(), 0u);
}

TEST(Admission, CancellingAParkedJobFreesItsSlotWithoutLaunching) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  std::string why;
  EXPECT_EQ(q.admit(1, 1, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 2, 0, &why), AdmissionQueue::Verdict::kParked);
  EXPECT_EQ(q.release(2), std::vector<std::uint64_t>{});  // parked cancel
  EXPECT_EQ(q.release(1), std::vector<std::uint64_t>{});  // nothing waits
  EXPECT_EQ(q.outstanding(), 0u);
}

TEST(Admission, SessionLimitAndCloseDropParkedJobs) {
  AdmissionConfig cfg;
  cfg.max_sessions = 1;
  cfg.max_inflight = 1;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  EXPECT_FALSE(q.open_session(2));
  std::string why;
  EXPECT_EQ(q.admit(1, 1, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 2, 0, &why), AdmissionQueue::Verdict::kParked);
  EXPECT_EQ(q.admit(1, 3, 0, &why), AdmissionQueue::Verdict::kParked);
  EXPECT_EQ(q.close_session(1), (std::vector<std::uint64_t>{2, 3}));
  // The running job still occupies its slot until the server releases it.
  EXPECT_EQ(q.outstanding(), 1u);
  EXPECT_TRUE(q.open_session(2));
}

TEST(Admission, StrikesAccumulateAndEjectAtTheLimit) {
  AdmissionConfig cfg;
  cfg.strike_limit = 3;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  EXPECT_FALSE(q.record_strike(1));
  EXPECT_FALSE(q.record_strike(1));
  EXPECT_TRUE(q.record_strike(1));  // third strike ejects
  EXPECT_EQ(q.total_strikes(), 3u);
  EXPECT_EQ(q.total_strike_ejections(), 1u);
  // Unknown (already-closed) sessions never eject.
  EXPECT_FALSE(q.record_strike(99));
  // strike_limit 0 disables the limit entirely.
  AdmissionConfig off;
  off.strike_limit = 0;
  AdmissionQueue q2(off);
  ASSERT_TRUE(q2.open_session(1));
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(q2.record_strike(1));
  EXPECT_EQ(q2.total_strike_ejections(), 0u);
}

TEST(Admission, DrainRejectsNewAdmitsButParkedStillLaunch) {
  AdmissionConfig cfg;
  cfg.max_inflight = 1;
  AdmissionQueue q(cfg);
  ASSERT_TRUE(q.open_session(1));
  std::string why;
  EXPECT_EQ(q.admit(1, 1, 0, &why), AdmissionQueue::Verdict::kRun);
  EXPECT_EQ(q.admit(1, 2, 0, &why), AdmissionQueue::Verdict::kParked);
  q.begin_drain();
  EXPECT_EQ(q.admit(1, 3, 0, &why), AdmissionQueue::Verdict::kRejected);
  EXPECT_NE(why.find("drain"), std::string::npos) << why;
  EXPECT_EQ(q.release(1), std::vector<std::uint64_t>{2});
}

// ------------------------------------------------------------ end-to-end ---

// "timings" and "tt_cache" are the report's non-deterministic members.
std::string normalize_timings(std::string report) {
  for (const char* member : {"\"timings\": {", "\"tt_cache\": {"}) {
    const std::size_t at = report.find(member);
    if (at == std::string::npos) continue;
    const std::size_t open = report.find('{', at);
    const std::size_t close = report.find('}', open);
    if (close == std::string::npos) continue;
    report.replace(open, close - open + 1, "{}");
  }
  return report;
}

core::JobSpec make_spec(const std::string& circuit, int iterations) {
  core::JobSpec spec;
  spec.name = circuit;
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == circuit) spec.netlist = e.make();
  }
  spec.config.search.budget.iterations = iterations;
  return spec;
}

// What `afp_cli floorplan <circuit> --iters N --seed S --report-json` emits
// (and the bytes a served result's "report" member must match).
std::string reference_report(const std::string& circuit, int iterations,
                             std::uint64_t seed) {
  const core::JobSpec spec = make_spec(circuit, iterations);
  const core::JobReport rep =
      core::JobService::run_job(spec, 0, seed, nullptr, {});
  return core::report_json(rep.result, rep.name, rep.optimizer, rep.options,
                           rep.search, rep.seed);
}

std::string config_json(int iterations) {
  return "{\"optimizer\": \"sa\", \"search\": {\"iterations\": " +
         std::to_string(iterations) + "}}";
}

class ServiceE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/afp_serviceXXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    stop_server();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  std::string sock() const { return dir_ + "/afpd.sock"; }

  void start_server(AdmissionConfig adm, double drain_grace_s = 0.2) {
    service::ServerConfig cfg;
    cfg.admission = adm;
    cfg.drain_grace_s = drain_grace_s;
    start_server_cfg(std::move(cfg));
  }

  /// Full-config variant for the resilience tests (socket path is filled
  /// in here; pass by value so a test can reuse one cfg across restarts).
  void start_server_cfg(service::ServerConfig cfg) {
    cfg.unix_path = sock();
    server_.emplace(std::move(cfg));
    server_->start();
    serve_thread_ = std::thread([this] { server_->serve(); });
  }

  /// Polls the server's stats until `pred` holds (true) or 5 s elapse.
  bool wait_stats(
      const std::function<bool(const service::ServerStats&)>& pred) {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < until) {
      if (pred(server_->stats_snapshot())) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  void stop_server() {
    if (!server_) return;
    server_->request_drain();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
  }

  Client connect() { return Client::connect_unix(sock()); }

  std::string dir_;
  std::optional<service::Server> server_;
  std::thread serve_thread_;
};

TEST_F(ServiceE2E, ServedReportIsBitwiseIdenticalToRunJob) {
  start_server({});
  Client client = connect();
  const auto acc = client.submit("ota_small", 11, 0, config_json(80));
  EXPECT_FALSE(acc.queued);
  const Client::Result res = client.await_result(acc.job);
  EXPECT_EQ(res.status, "done");
  EXPECT_EQ(res.seed, 11u);
  EXPECT_EQ(res.attempts, 1);
  EXPECT_EQ(res.error_kind, "");
  EXPECT_EQ(normalize_timings(res.report_raw),
            normalize_timings(reference_report("ota_small", 80, 11)));
  // Progress streamed: at least a running event for the job.
  bool saw_running = false;
  for (const auto& p : client.progress()) {
    if (p.job == acc.job && p.status == "running") saw_running = true;
  }
  EXPECT_TRUE(saw_running);
}

TEST_F(ServiceE2E, ScenarioSubmitMatchesInProcessGeneration) {
  start_server({});
  Client client = connect();
  const std::string spec_text = "latch:8:3";
  const auto acc = client.submit_scenario(spec_text, 21, 0, config_json(60));
  const Client::Result res = client.await_result(acc.job);
  EXPECT_EQ(res.status, "done");

  // The served report must be byte-identical to generating the scenario
  // here and running the same job in process (modulo timings/tt_cache).
  const auto sc =
      afp::ingest::make_scenario(afp::ingest::ScenarioSpec::parse(spec_text));
  core::JobSpec spec;
  spec.name = spec_text;
  spec.netlist = sc.netlist;
  spec.config.scenario_constraints = sc.constraints;
  spec.config.search.budget.iterations = 60;
  const core::JobReport rep =
      core::JobService::run_job(spec, 0, 21, nullptr, {});
  EXPECT_EQ(rep.status, core::JobStatus::kDone);
  EXPECT_TRUE(rep.result.instance.constraints.sym_pairs.size() +
                  rep.result.instance.constraints.preplaced.size() >
              0);
  EXPECT_EQ(normalize_timings(res.report_raw),
            normalize_timings(core::report_json(rep.result, rep.name,
                                                rep.optimizer, rep.options,
                                                rep.search, rep.seed)));

  // A malformed scenario spec is a structured invalid_config rejection and
  // the session survives it.
  try {
    client.submit_scenario("warp_core:10:1", 1);
    FAIL() << "unknown family accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind, "invalid_config");
  }
  try {
    client.submit_scenario("ota:2:1", 1);
    FAIL() << "undersized scenario accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind, "invalid_config");
  }
  const auto again = client.submit_scenario("ota:6:1", 5, 0, config_json(40));
  EXPECT_EQ(client.await_result(again.job).status, "done");
}

TEST_F(ServiceE2E, SeedlessSubmitsDeriveDistinctSeeds) {
  start_server({});
  Client client = connect();
  const auto a = client.submit("ota_small", 0, 0, config_json(40));
  const auto b = client.submit("ota_small", 0, 0, config_json(40));
  const auto ra = client.await_result(a.job);
  const auto rb = client.await_result(b.job);
  EXPECT_EQ(ra.status, "done");
  EXPECT_EQ(rb.status, "done");
  EXPECT_NE(ra.seed, 0u);
  EXPECT_NE(rb.seed, 0u);
  EXPECT_NE(ra.seed, rb.seed);
}

TEST_F(ServiceE2E, ConcurrentSessionsGetIdenticalBytesPerSeed) {
  AdmissionConfig adm;
  adm.max_inflight = 4;
  adm.per_session = 8;
  start_server(adm);
  constexpr int kClients = 4;
  const std::uint64_t seeds[] = {5, 6};
  std::string reports[kClients][2];
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client = Client::connect_unix(sock());
      for (int i = 0; i < 2; ++i) {
        const auto acc = client.submit("ota_small", seeds[i], 0,
                                       config_json(40));
        reports[c][i] =
            normalize_timings(client.await_result(acc.job).report_raw);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 2; ++i) {
    for (int c = 1; c < kClients; ++c) {
      EXPECT_EQ(reports[c][i], reports[0][i]) << "client " << c;
    }
    EXPECT_NE(reports[0][i].find("\"schema_version\""), std::string::npos);
  }
}

TEST_F(ServiceE2E, CancelBeforeLaunchYieldsCancelledResult) {
  AdmissionConfig adm;
  adm.max_inflight = 1;
  start_server(adm);
  Client client = connect();
  const auto running = client.submit("ota_small", 1, 0, config_json(1 << 28));
  const auto parked = client.submit("ota_small", 2, 0, config_json(40));
  EXPECT_TRUE(parked.queued);
  client.cancel(parked.job);
  const auto res = client.await_result(parked.job);
  EXPECT_EQ(res.status, "cancelled");
  EXPECT_EQ(res.error_kind, "cancelled");
  EXPECT_NE(res.error_message.find("before launch"), std::string::npos);
  EXPECT_EQ(res.report_raw, "null");
  // Unblock the long job too; a cancelled running search returns promptly.
  client.cancel(running.job);
  (void)client.await_result(running.job);
}

TEST_F(ServiceE2E, MidRunDeadlineTerminatesTheJob) {
  start_server({});
  Client client = connect();
  // A search that would run for minutes; the client arms a 50 ms deadline
  // AFTER submission — the StopPoll re-consultation path end to end.
  const auto acc = client.submit("ota_small", 3, 0, config_json(1 << 28));
  client.set_deadline(acc.job, 0.05);
  const auto res = client.await_result(acc.job);
  EXPECT_EQ(res.status, "deadline_exceeded");
  EXPECT_EQ(res.error_kind, "deadline_exceeded");
  EXPECT_EQ(res.report_raw, "null");
}

TEST_F(ServiceE2E, MalformedSubmitsGetStructuredErrorsSessionSurvives) {
  start_server({});
  Client client = connect();
  // Unknown optimizer, unknown config member, wrong types, both-or-neither
  // circuit/spice: every one a structured invalid_config error.
  const char* bad[] = {
      R"({"type": "submit", "circuit": "ota_small",
          "config": {"optimizer": "annealing-deluxe"}})",
      R"({"type": "submit", "circuit": "ota_small",
          "config": {"bogus_knob": 1}})",
      R"({"type": "submit", "circuit": "ota_small",
          "config": {"search": {"iterations": -4}}})",
      R"({"type": "submit", "circuit": "ota_small", "spice": "x"})",
      R"({"type": "submit"})",
      R"({"type": "submit", "circuit": "no_such_circuit"})",
      R"({"type": "submit", "circuit": "ota_small", "seed": 1.5})",
      R"({"type": "submit", "circuit": "ota_small", "surprise": 1})",
      R"({"type": "teleport"})",
      R"(["not", "an", "object"])",
      R"({"type": "submit", "circuit": "ota_small",
          "config": {"search": {"restarts": 4, "wall_clock_s": 0.1}}})",
  };
  for (const char* payload : bad) {
    client.send_frame(payload);
    const JsonValue v = service::json_parse(client.read_frame());
    EXPECT_EQ(v.at("type").as_string(), "error") << payload;
    EXPECT_EQ(v.at("kind").as_string(), "invalid_config") << payload;
  }
  // The typed client surfaces the same rejection as a ServerError.
  try {
    client.submit("ota_small", 1, 0, "{\"optimizer\": \"annealing-deluxe\"}");
    FAIL() << "bad optimizer accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind, "invalid_config");
  }
  // The session survives every rejection: ping works, a good submit runs.
  EXPECT_FALSE(client.ping());
  const auto acc = client.submit("ota_small", 4, 0, config_json(40));
  EXPECT_EQ(client.await_result(acc.job).status, "done");
}

TEST_F(ServiceE2E, JunkBytesCloseTheSessionWithAPartingError) {
  start_server({});
  Client victim = connect();
  EXPECT_FALSE(victim.ping());
  victim.send_raw("GET / HTTP/1.1\r\n\r\n");
  // The parting structured error, then EOF.
  const JsonValue v = service::json_parse(victim.read_frame());
  EXPECT_EQ(v.at("type").as_string(), "error");
  EXPECT_EQ(v.at("kind").as_string(), "invalid_config");
  EXPECT_THROW((void)victim.read_frame(), std::runtime_error);
  // The server is unharmed: a fresh session works end to end.
  Client fresh = connect();
  const auto acc = fresh.submit("ota_small", 5, 0, config_json(40));
  EXPECT_EQ(fresh.await_result(acc.job).status, "done");
}

TEST_F(ServiceE2E, OversizedAndZeroPrefixesAreRejected) {
  start_server({});
  {
    Client c = connect();
    c.send_raw(std::string("\xff\xff\xff\xff", 4));
    const JsonValue v = service::json_parse(c.read_frame());
    EXPECT_EQ(v.at("type").as_string(), "error");
    EXPECT_THROW((void)c.read_frame(), std::runtime_error);
  }
  {
    Client c = connect();
    c.send_raw(std::string("\x00\x00\x00\x00", 4));
    const JsonValue v = service::json_parse(c.read_frame());
    EXPECT_EQ(v.at("type").as_string(), "error");
    EXPECT_THROW((void)c.read_frame(), std::runtime_error);
  }
  Client fresh = connect();
  EXPECT_FALSE(fresh.ping());
}

TEST_F(ServiceE2E, MidFrameDisconnectLeavesTheServerServing) {
  start_server({});
  {
    Client c = connect();
    // A frame claiming 100 bytes, only 10 delivered, then half-close.
    std::string prefix(4, '\0');
    prefix[3] = 100;
    c.send_raw(prefix + "0123456789");
    c.shutdown_write();
    EXPECT_THROW((void)c.read_frame(), std::runtime_error);  // EOF
  }
  Client fresh = connect();
  const auto acc = fresh.submit("ota_small", 6, 0, config_json(40));
  EXPECT_EQ(fresh.await_result(acc.job).status, "done");
}

TEST_F(ServiceE2E, PerSessionQuotaRejectsWithResourceExhausted) {
  AdmissionConfig adm;
  adm.max_inflight = 1;
  adm.per_session = 2;
  start_server(adm);
  Client client = connect();
  const auto running =
      client.submit("ota_small", 1, 0, config_json(1 << 28));
  const auto parked = client.submit("ota_small", 2, 0, config_json(40));
  EXPECT_TRUE(parked.queued);
  try {
    client.submit("ota_small", 3, 0, config_json(40));
    FAIL() << "over-quota submit accepted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind, "resource_exhausted");
  }
  client.cancel(running.job);
  (void)client.await_result(running.job);
  (void)client.await_result(parked.job);
}

TEST_F(ServiceE2E, HigherPriorityParkedJobsLaunchFirst) {
  AdmissionConfig adm;
  adm.max_inflight = 1;
  start_server(adm);
  Client client = connect();
  const auto head = client.submit("ota_small", 1, 0, config_json(1 << 28));
  const auto low = client.submit("ota_small", 2, 0, config_json(40));
  const auto high = client.submit("ota_small", 3, 7, config_json(40));
  ASSERT_TRUE(low.queued);
  ASSERT_TRUE(high.queued);
  client.cancel(head.job);
  (void)client.await_result(head.job);
  (void)client.await_result(low.job);
  (void)client.await_result(high.job);
  // The progress stream records launch order: the high-priority job must
  // start running before the low-priority one ever does.
  std::size_t first_high = ~std::size_t{0}, first_low = ~std::size_t{0};
  const auto& events = client.progress();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].status != "running") continue;
    if (events[i].job == high.job) first_high = std::min(first_high, i);
    if (events[i].job == low.job) first_low = std::min(first_low, i);
  }
  ASSERT_NE(first_high, ~std::size_t{0});
  ASSERT_NE(first_low, ~std::size_t{0});
  EXPECT_LT(first_high, first_low);
}

TEST_F(ServiceE2E, SessionLimitRejectsTheExtraClient) {
  AdmissionConfig adm;
  adm.max_sessions = 1;
  start_server(adm);
  Client first = connect();
  EXPECT_FALSE(first.ping());
  Client second = connect();
  try {
    second.ping();
    FAIL() << "session over the limit admitted";
  } catch (const ServerError& e) {
    EXPECT_EQ(e.kind, "resource_exhausted");
  } catch (const std::runtime_error&) {
    // The rejection frame can race the close; a dropped connection is an
    // acceptable surface for the limit too.
  }
  EXPECT_FALSE(first.ping());  // the admitted session is unaffected
}

TEST_F(ServiceE2E, DrainCancelsInFlightJobsButFlushesTheirResults) {
  start_server({}, /*drain_grace_s=*/0.05);
  Client client = connect();
  const auto acc = client.submit("ota_small", 9, 0, config_json(1 << 28));
  server_->request_drain();
  // The grace window expires, the drain token cancels the search, and the
  // terminal result frame is still delivered before the socket closes.
  const auto res = client.await_result(acc.job);
  EXPECT_TRUE(res.status == "cancelled" || res.status == "done")
      << res.status;
  stop_server();
  EXPECT_THROW((void)client.read_frame(), std::runtime_error);
}

// A submit frame sent raw (no reply wait) — for tests that must keep
// submitting while the server's writer is paused.
std::string submit_json(const std::string& circuit, std::uint64_t seed,
                        int iterations) {
  return "{\"type\": \"submit\", \"circuit\": \"" + circuit +
         "\", \"seed\": " + std::to_string(seed) +
         ", \"config\": " + config_json(iterations) + "}";
}

TEST_F(ServiceE2E, SlowReaderDropsOnlyProgressFramesAndAccountsForThem) {
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.queue_frames = 1;        // one queued frame => backpressure
  cfg.write_deadline_s = 0.0;  // a paused writer must not look stalled
  cfg.idle_timeout_s = 0.0;
  start_server_cfg(std::move(cfg));
  Client client = connect();
  server_->set_writer_paused(true);
  // Park a pong at the head of the queue so it is full (and stays full,
  // held by non-droppable frames) before any job can emit progress.
  client.send_frame("{\"type\": \"ping\"}");
  constexpr int kJobs = 3;
  for (int j = 0; j < kJobs; ++j) {
    client.send_frame(submit_json("ota_small", 30 + j, 40));
  }
  // Every accepted/result frame queues past the bound (non-droppable);
  // every progress frame is dropped and counted.
  ASSERT_TRUE(wait_stats([&](const service::ServerStats& st) {
    return st.queued_frames == 1 + 2 * kJobs && st.inflight == 0;
  }));
  const std::uint64_t dropped = server_->stats_snapshot().dropped_progress;
  EXPECT_GE(dropped, static_cast<std::uint64_t>(kJobs));  // >= 1 per job
  // The slow reader catches up: the backlog is exactly the pong plus one
  // accepted and one result per job — zero results were dropped.
  server_->set_writer_paused(false);
  int pongs = 0, accepted = 0, results = 0;
  for (int i = 0; i < 1 + 2 * kJobs; ++i) {
    const JsonValue v = service::json_parse(client.read_frame());
    const std::string& type = v.at("type").as_string();
    if (type == "pong") ++pongs;
    if (type == "accepted") ++accepted;
    if (type == "result") ++results;
  }
  EXPECT_EQ(pongs, 1);
  EXPECT_EQ(accepted, kJobs);
  EXPECT_EQ(results, kJobs);
  // The next delivered progress frame carries the full drop count.
  const auto acc = client.submit("ota_small", 40, 0, config_json(40));
  EXPECT_EQ(client.await_result(acc.job).status, "done");
  std::uint64_t echoed = 0;
  for (const auto& p : client.progress()) echoed += p.dropped;
  EXPECT_EQ(echoed, dropped);
}

TEST_F(ServiceE2E, WriteDeadlineDisconnectsStalledClientAndCancelsItsJobs) {
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.write_deadline_s = 0.25;
  cfg.idle_timeout_s = 0.0;
  start_server_cfg(std::move(cfg));
  Client client = connect();
  server_->set_writer_paused(true);
  // The accepted frame queues but never flushes; the session makes no
  // write progress past the deadline and is disconnected, which cancels
  // its near-endless job through the session CancelToken.
  client.send_frame(submit_json("ota_small", 41, 1 << 28));
  ASSERT_TRUE(wait_stats([](const service::ServerStats& st) {
    return st.write_timeouts == 1 && st.inflight == 0 && st.sessions == 0;
  }));
  EXPECT_THROW((void)client.read_frame(), std::runtime_error);  // EOF
  server_->set_writer_paused(false);
  // The server survives: a fresh session runs a job end to end.
  Client fresh = connect();
  const auto acc = fresh.submit("ota_small", 42, 0, config_json(40));
  EXPECT_EQ(fresh.await_result(acc.job).status, "done");
}

TEST_F(ServiceE2E, IdleSessionGetsAKeepaliveProbeThenReaped) {
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.idle_timeout_s = 0.4;
  start_server_cfg(std::move(cfg));
  Client client = connect();  // sends nothing, acks nothing: half-open
  const JsonValue ka = service::json_parse(client.read_frame());
  EXPECT_EQ(ka.at("type").as_string(), "keepalive");
  EXPECT_GE(ka.at("seq").as_uint("seq"), 1u);
  const JsonValue err = service::json_parse(client.read_frame());
  EXPECT_EQ(err.at("type").as_string(), "error");
  EXPECT_EQ(err.at("kind").as_string(), "resource_exhausted");
  EXPECT_NE(err.at("message").as_string().find("idle"), std::string::npos);
  EXPECT_THROW((void)client.read_frame(), std::runtime_error);  // EOF
  ASSERT_TRUE(wait_stats([](const service::ServerStats& st) {
    return st.idle_timeouts == 1 && st.sessions == 0;
  }));
  EXPECT_GE(server_->stats_snapshot().keepalives_sent, 1u);
}

TEST_F(ServiceE2E, KeepaliveAckKeepsABlockedClientAlive) {
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.idle_timeout_s = 0.8;
  start_server_cfg(std::move(cfg));
  Client client = connect();
  // The client blocks in await_result for ~1.2 s — past the idle
  // timeout — surviving on auto-acked keepalive probes alone.
  const auto acc = client.submit("ota_small", 43, 0, config_json(1 << 28));
  client.set_deadline(acc.job, 1.2);
  const auto res = client.await_result(acc.job);
  EXPECT_EQ(res.status, "deadline_exceeded");
  const auto st = server_->stats_snapshot();
  EXPECT_GE(st.keepalives_sent, 1u);
  EXPECT_EQ(st.idle_timeouts, 0u);
  EXPECT_FALSE(client.ping());  // the session is still fully alive
}

TEST_F(ServiceE2E, MalformedFloodTripsTheStrikeLimit) {
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.admission.strike_limit = 3;
  start_server_cfg(std::move(cfg));
  Client client = connect();
  for (int i = 0; i < 3; ++i) client.send_frame("{\"type\": \"teleport\"}");
  // Three per-request errors, then the ejection error, then EOF.
  for (int i = 0; i < 3; ++i) {
    const JsonValue v = service::json_parse(client.read_frame());
    EXPECT_EQ(v.at("type").as_string(), "error");
    EXPECT_EQ(v.at("kind").as_string(), "invalid_config");
  }
  const JsonValue eject = service::json_parse(client.read_frame());
  EXPECT_EQ(eject.at("type").as_string(), "error");
  EXPECT_EQ(eject.at("kind").as_string(), "resource_exhausted");
  EXPECT_NE(eject.at("message").as_string().find("strike"),
            std::string::npos);
  EXPECT_THROW((void)client.read_frame(), std::runtime_error);
  // A fresh session is unaffected and sees the totals in `stats`.
  Client fresh = connect();
  const JsonValue st = fresh.stats();
  EXPECT_EQ(st.at("strikes").as_uint("strikes"), 3u);
  EXPECT_EQ(st.at("strike_ejections").as_uint("strike_ejections"), 1u);
  const auto acc = fresh.submit("ota_small", 44, 0, config_json(40));
  EXPECT_EQ(fresh.await_result(acc.job).status, "done");
}

TEST_F(ServiceE2E, JournalReplayAfterSimulatedCrashSurfacesOrphans) {
  const std::string journal = dir_ + "/journal.afpw";
  service::ServerConfig cfg;
  cfg.drain_grace_s = 0.2;
  cfg.journal_path = journal;
  start_server_cfg(cfg);
  Client client = connect();
  const auto acc = client.submit("ota_small", 77, 0, config_json(1 << 28));
  ASSERT_TRUE(wait_stats([](const service::ServerStats& st) {
    return st.journal_live == 1;
  }));
  // Snapshot the on-disk journal exactly as a crash would leave it.
  std::string crash_bytes;
  {
    std::ifstream in(journal, std::ios::binary);
    crash_bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  ASSERT_FALSE(crash_bytes.empty());
  client.cancel(acc.job);
  (void)client.await_result(acc.job);
  stop_server();
  // "Crash": restore the journal the clean shutdown just emptied, then
  // restart on the same path.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out << crash_bytes;
  }
  start_server_cfg(cfg);
  ASSERT_EQ(server_->orphans().size(), 1u);
  EXPECT_EQ(server_->orphans()[0].job, acc.job);
  Client fresh = connect();
  const JsonValue orph = fresh.orphans();
  EXPECT_EQ(orph.at("count").as_uint("count"), 1u);
  const auto& jobs = orph.at("jobs").as_array();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].at("job").as_uint("job"), acc.job);
  EXPECT_EQ(jobs[0].at("seed").as_uint("seed"), 77u);
  EXPECT_EQ(jobs[0].at("name").as_string(), "ota_small");
  EXPECT_EQ(jobs[0].at("error").at("kind").as_string(), "internal");
  const JsonValue st = fresh.stats();
  EXPECT_EQ(st.at("journal_orphans").as_uint("journal_orphans"), 1u);
  EXPECT_EQ(st.at("journal_live").as_uint("journal_live"), 0u);
  // The replayed journal was reset: a finished job leaves nothing behind.
  const auto ok = fresh.submit("ota_small", 5, 0, config_json(40));
  EXPECT_EQ(fresh.await_result(ok.job).status, "done");
  EXPECT_EQ(server_->stats_snapshot().journal_live, 0u);
}

TEST_F(ServiceE2E, InjectedFaultsDoNotPerturbOtherSessionsJobs) {
  // Service job ids are assigned in submission order from 0, so the clause
  // targets exactly the first submitted job.
  core::FaultInjector::global().configure("throw@0:0");
  AdmissionConfig adm;
  adm.max_inflight = 1;
  start_server(adm);
  Client faulted = connect();
  Client clean = connect();
  const auto fa = faulted.submit("ota_small", 21, 0, config_json(60));
  const auto fr = faulted.await_result(fa.job);
  EXPECT_EQ(fr.status, "failed");
  EXPECT_EQ(fr.error_kind, "optimizer_failure");
  EXPECT_EQ(fr.report_raw, "null");
  // The neighbouring session's job (service id 1) runs clean and stays
  // bitwise identical to an uninjected run_job of the same spec.
  const auto ca = clean.submit("ota_small", 22, 0, config_json(60));
  const auto cr = clean.await_result(ca.job);
  core::FaultInjector::global().configure("");
  EXPECT_EQ(cr.status, "done");
  EXPECT_EQ(normalize_timings(cr.report_raw),
            normalize_timings(reference_report("ota_small", 60, 22)));
}

}  // namespace
