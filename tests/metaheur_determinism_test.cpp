// Determinism tests for the parallel metaheuristics: SA multi-restart, GA
// and PSO (parallel population scoring) and B*-tree SA multi-restart must
// produce bitwise-identical best cost and layout whether the shared pool
// runs 1 or 4 threads, and seeded runs must be reproducible across repeats.
#include <gtest/gtest.h>

#include <cmath>

#include "metaheur/parallel_search.hpp"
#include "metaheur/tempering.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp::metaheur {
namespace {

floorplan::Instance instance_of(const netlist::Netlist& nl) {
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

void expect_identical(const BaselineResult& a, const BaselineResult& b,
                      const char* what) {
  EXPECT_EQ(a.method, b.method) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  // Bitwise-equal reward and layout: the packed rectangles are pure doubles
  // computed from the same candidate, so any drift means the search path
  // diverged.
  EXPECT_EQ(a.eval.reward, b.eval.reward) << what;
  EXPECT_EQ(a.eval.hpwl, b.eval.hpwl) << what;
  ASSERT_EQ(a.rects.size(), b.rects.size()) << what;
  for (std::size_t i = 0; i < a.rects.size(); ++i)
    EXPECT_EQ(a.rects[i], b.rects[i]) << what << " rect " << i;
}

/// Runs `search` under 1 and 4 pool threads plus a repeat, and requires all
/// three results to be identical.
void check_thread_invariance(
    const std::function<BaselineResult()>& search, const char* what) {
  num::set_num_threads(1);
  const BaselineResult r1 = search();
  const BaselineResult r1_repeat = search();
  num::set_num_threads(4);
  const BaselineResult r4 = search();
  num::set_num_threads(0);  // restore the ambient default
  expect_identical(r1, r1_repeat, (std::string(what) + " repeat").c_str());
  expect_identical(r1, r4, (std::string(what) + " 1-vs-4 threads").c_str());
}

TEST(RestartRng, StreamsAreStableAndDistinct) {
  auto a = restart_rng(7, 0);
  auto b = restart_rng(7, 0);
  EXPECT_EQ(a(), b());  // same (seed, restart) -> same stream
  auto c = restart_rng(7, 1);
  auto d = restart_rng(8, 0);
  std::mt19937_64 a2 = restart_rng(7, 0);
  EXPECT_NE(a2(), c());
  EXPECT_NE(a2(), d());
}

TEST(MultiStart, RejectsZeroRestarts) {
  const auto inst = instance_of(netlist::make_ota_small());
  EXPECT_THROW(run_sa_multi(inst, SAParams{}, {0, 1}), std::invalid_argument);
}

TEST(MultiStart, SaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  SAParams p;
  p.iterations = 600;
  check_thread_invariance(
      [&] { return run_sa_multi(inst, p, {4, 11}); }, "SA x4");
}

TEST(MultiStart, BStarSaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_bias1());
  BStarSAParams p;
  p.iterations = 600;
  check_thread_invariance(
      [&] { return run_sa_bstar_multi(inst, p, {4, 5}); }, "SA-B* x4");
}

TEST(ParallelPopulations, GaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  GAParams p;
  p.population = 10;
  p.generations = 8;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(33);  // fresh stream per run
        return run_ga(inst, p, rng);
      },
      "GA");
}

TEST(ParallelPopulations, PsoIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  PSOParams p;
  p.particles = 8;
  p.iterations = 10;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(44);
        return run_pso(inst, p, rng);
      },
      "PSO");
}

TEST(MultiStart, GaWrapperIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota_small());
  GAParams p;
  p.population = 8;
  p.generations = 5;
  check_thread_invariance(
      [&] { return run_ga_multi(inst, p, {3, 9}); }, "GA x3");
}

// ------------------------------------------------ parallel tempering ---

TEST(Tempering, SwapProbabilityMatchesHandComputedReference) {
  // P(swap) = min(1, exp((1/Ti - 1/Tj)(Ci - Cj))).  Hand-computed cases:
  //  Ti=0.5, Tj=1.0, Ci=3, Cj=5: exponent (2-1)(3-5) = -2  -> e^-2
  EXPECT_DOUBLE_EQ(pt_swap_probability(3.0, 5.0, 0.5, 1.0), std::exp(-2.0));
  //  Ti=0.5, Tj=1.0, Ci=5, Cj=3: exponent (2-1)(5-3) = +2  -> clipped to 1
  EXPECT_DOUBLE_EQ(pt_swap_probability(5.0, 3.0, 0.5, 1.0), 1.0);
  //  Ti=0.25, Tj=2.0, Ci=1.5, Cj=1.0: (4-0.5)(0.5) = 1.75 -> 1
  EXPECT_DOUBLE_EQ(pt_swap_probability(1.5, 1.0, 0.25, 2.0), 1.0);
  //  Symmetric temperatures never reject: exponent 0 -> 1
  EXPECT_DOUBLE_EQ(pt_swap_probability(4.0, 9.0, 1.0, 1.0), 1.0);
  //  Ti=1, Tj=4, Ci=2, Cj=10: (1-0.25)(-8) = -6 -> e^-6
  EXPECT_DOUBLE_EQ(pt_swap_probability(2.0, 10.0, 1.0, 4.0), std::exp(-6.0));
}

TEST(Tempering, GeometricLadderIsMonotoneAndGeometric) {
  const auto t = geometric_ladder(1e-3, 2.0, 6);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_DOUBLE_EQ(t.front(), 1e-3);
  EXPECT_DOUBLE_EQ(t.back(), 2.0);
  for (std::size_t k = 1; k < t.size(); ++k) {
    EXPECT_GT(t[k], t[k - 1]) << "rung " << k;
  }
  // Constant ratio between adjacent rungs (geometric schedule).
  const double ratio = t[1] / t[0];
  for (std::size_t k = 2; k < t.size(); ++k) {
    EXPECT_NEAR(t[k] / t[k - 1], ratio, 1e-9) << "rung " << k;
  }
  EXPECT_THROW(geometric_ladder(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(geometric_ladder(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Tempering, AutoHotTemperatureTracksInitialCostSpread) {
  EXPECT_DOUBLE_EQ(auto_hot_temperature({3.0, 8.5, 4.0}), 5.5);
  EXPECT_DOUBLE_EQ(auto_hot_temperature({2.0, 2.1}), 1.0);  // floored
  EXPECT_DOUBLE_EQ(auto_hot_temperature({}), 1.0);
}

TEST(Tempering, ReplicaStreamsAreStableDistinctAndSeparated) {
  auto a = replica_rng(7, 0);
  auto b = replica_rng(7, 0);
  EXPECT_EQ(a(), b());  // same (seed, replica) -> same stream
  auto c = replica_rng(7, 1);
  auto d = replica_rng(8, 0);
  auto swap_stream = replica_rng(7, -1);
  std::mt19937_64 a2 = replica_rng(7, 0);
  EXPECT_NE(a2(), c());
  EXPECT_NE(a2(), d());
  EXPECT_NE(a2(), swap_stream());
  // Domain separation from the multi-restart streams.
  auto restart = restart_rng(7, 0);
  std::mt19937_64 a3 = replica_rng(7, 0);
  EXPECT_NE(a3(), restart());
}

TEST(Tempering, RejectsDegenerateParams) {
  const auto inst = instance_of(netlist::make_ota_small());
  std::mt19937_64 rng(1);
  PTParams p;
  p.replicas = 1;
  EXPECT_THROW(run_pt(inst, p, rng), std::invalid_argument);
  p = {};
  p.swap_interval = 0;
  EXPECT_THROW(run_pt(inst, p, rng), std::invalid_argument);
  p = {};
  p.t_hot = 1e-4;  // below t_cold
  EXPECT_THROW(run_pt(inst, p, rng), std::invalid_argument);
}

TEST(Tempering, PtIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  PTParams p;
  p.replicas = 6;
  p.iterations = 120;
  p.swap_interval = 8;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(17);
        return run_pt(inst, p, rng);
      },
      "PT");
}

TEST(Tempering, PtBStarIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_bias1());
  PTParams p;
  p.replicas = 5;
  p.iterations = 100;
  p.swap_interval = 10;
  p.representation = Representation::kBStarTree;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(23);
        return run_pt(inst, p, rng);
      },
      "PT-B*");
}

TEST(Tempering, AdaptiveSwapIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  PTParams p;
  p.replicas = 4;
  p.iterations = 160;
  p.swap_interval = 4;
  p.adaptive_swap = true;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(29);
        return run_pt(inst, p, rng);
      },
      "PT adaptive");
}

TEST(Tempering, MultiStartPtIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota_small());
  PTParams p;
  p.replicas = 4;
  p.iterations = 80;
  check_thread_invariance(
      [&] { return run_pt_multi(inst, p, {3, 13}); }, "PT x3");
}

TEST(Tempering, BestIsNoWorseThanEveryReplicaStart) {
  // The returned best must beat (or match) each replica's initial state:
  // the chains only ever improve their per-replica best.
  const auto inst = instance_of(netlist::make_ota2());
  PTParams p;
  p.replicas = 6;
  p.iterations = 200;
  std::mt19937_64 rng(31);
  const auto res = run_pt(inst, p, rng);
  const double best = sp_cost(inst, res.rects);
  const double spacing = inst.canvas_w / 32.0;
  std::mt19937_64 seed_rng(31);
  const std::uint64_t base_seed = seed_rng();
  for (int k = 0; k < p.replicas; ++k) {
    auto rrng = replica_rng(base_seed, k);
    const auto sp = SequencePair::random(inst.num_blocks(), rrng);
    EXPECT_GE(sp_cost(inst, pack(inst, sp, spacing)), best - 1e-12)
        << "replica " << k;
  }
  EXPECT_EQ(res.evaluations,
            static_cast<long>(p.replicas) * (1 + p.iterations));
  EXPECT_EQ(res.method, "PT");
}

TEST(MultiStart, BestOfRestartsIsNoWorseThanAnySingleRestart) {
  const auto inst = instance_of(netlist::make_ota2());
  SAParams p;
  p.iterations = 500;
  const MultiStartOptions opt{4, 21};
  const auto multi = run_sa_multi(inst, p, opt);
  const double multi_cost = sp_cost(inst, multi.rects);
  long total_evals = 0;
  for (int k = 0; k < opt.restarts; ++k) {
    auto rng = restart_rng(opt.base_seed, k);
    const auto single = run_sa(inst, p, rng);
    EXPECT_GE(sp_cost(inst, single.rects), multi_cost - 1e-12)
        << "restart " << k;
    total_evals += single.evaluations;
  }
  EXPECT_EQ(multi.evaluations, total_evals);
  EXPECT_EQ(multi.method, "SAx4");
}

}  // namespace
}  // namespace afp::metaheur
