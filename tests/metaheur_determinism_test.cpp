// Determinism tests for the parallel metaheuristics: SA multi-restart, GA
// and PSO (parallel population scoring) and B*-tree SA multi-restart must
// produce bitwise-identical best cost and layout whether the shared pool
// runs 1 or 4 threads, and seeded runs must be reproducible across repeats.
#include <gtest/gtest.h>

#include "metaheur/parallel_search.hpp"
#include "netlist/library.hpp"
#include "numeric/parallel.hpp"

namespace afp::metaheur {
namespace {

floorplan::Instance instance_of(const netlist::Netlist& nl) {
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  return floorplan::make_instance(g);
}

void expect_identical(const BaselineResult& a, const BaselineResult& b,
                      const char* what) {
  EXPECT_EQ(a.method, b.method) << what;
  EXPECT_EQ(a.evaluations, b.evaluations) << what;
  // Bitwise-equal reward and layout: the packed rectangles are pure doubles
  // computed from the same candidate, so any drift means the search path
  // diverged.
  EXPECT_EQ(a.eval.reward, b.eval.reward) << what;
  EXPECT_EQ(a.eval.hpwl, b.eval.hpwl) << what;
  ASSERT_EQ(a.rects.size(), b.rects.size()) << what;
  for (std::size_t i = 0; i < a.rects.size(); ++i)
    EXPECT_EQ(a.rects[i], b.rects[i]) << what << " rect " << i;
}

/// Runs `search` under 1 and 4 pool threads plus a repeat, and requires all
/// three results to be identical.
void check_thread_invariance(
    const std::function<BaselineResult()>& search, const char* what) {
  num::set_num_threads(1);
  const BaselineResult r1 = search();
  const BaselineResult r1_repeat = search();
  num::set_num_threads(4);
  const BaselineResult r4 = search();
  num::set_num_threads(0);  // restore the ambient default
  expect_identical(r1, r1_repeat, (std::string(what) + " repeat").c_str());
  expect_identical(r1, r4, (std::string(what) + " 1-vs-4 threads").c_str());
}

TEST(RestartRng, StreamsAreStableAndDistinct) {
  auto a = restart_rng(7, 0);
  auto b = restart_rng(7, 0);
  EXPECT_EQ(a(), b());  // same (seed, restart) -> same stream
  auto c = restart_rng(7, 1);
  auto d = restart_rng(8, 0);
  std::mt19937_64 a2 = restart_rng(7, 0);
  EXPECT_NE(a2(), c());
  EXPECT_NE(a2(), d());
}

TEST(MultiStart, RejectsZeroRestarts) {
  const auto inst = instance_of(netlist::make_ota_small());
  EXPECT_THROW(run_sa_multi(inst, SAParams{}, {0, 1}), std::invalid_argument);
}

TEST(MultiStart, SaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  SAParams p;
  p.iterations = 600;
  check_thread_invariance(
      [&] { return run_sa_multi(inst, p, {4, 11}); }, "SA x4");
}

TEST(MultiStart, BStarSaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_bias1());
  BStarSAParams p;
  p.iterations = 600;
  check_thread_invariance(
      [&] { return run_sa_bstar_multi(inst, p, {4, 5}); }, "SA-B* x4");
}

TEST(ParallelPopulations, GaIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  GAParams p;
  p.population = 10;
  p.generations = 8;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(33);  // fresh stream per run
        return run_ga(inst, p, rng);
      },
      "GA");
}

TEST(ParallelPopulations, PsoIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota2());
  PSOParams p;
  p.particles = 8;
  p.iterations = 10;
  check_thread_invariance(
      [&] {
        std::mt19937_64 rng(44);
        return run_pso(inst, p, rng);
      },
      "PSO");
}

TEST(MultiStart, GaWrapperIsThreadCountInvariant) {
  const auto inst = instance_of(netlist::make_ota_small());
  GAParams p;
  p.population = 8;
  p.generations = 5;
  check_thread_invariance(
      [&] { return run_ga_multi(inst, p, {3, 9}); }, "GA x3");
}

TEST(MultiStart, BestOfRestartsIsNoWorseThanAnySingleRestart) {
  const auto inst = instance_of(netlist::make_ota2());
  SAParams p;
  p.iterations = 500;
  const MultiStartOptions opt{4, 21};
  const auto multi = run_sa_multi(inst, p, opt);
  const double multi_cost = sp_cost(inst, multi.rects);
  long total_evals = 0;
  for (int k = 0; k < opt.restarts; ++k) {
    auto rng = restart_rng(opt.base_seed, k);
    const auto single = run_sa(inst, p, rng);
    EXPECT_GE(sp_cost(inst, single.rects), multi_cost - 1e-12)
        << "restart " << k;
    total_evals += single.evaluations;
  }
  EXPECT_EQ(multi.evaluations, total_evals);
  EXPECT_EQ(multi.method, "SAx4");
}

}  // namespace
}  // namespace afp::metaheur
