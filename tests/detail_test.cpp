// Focused tests for detailed-routing mechanics (per-net pins, lane
// assignment), gradient flow through the full agent, and assorted
// smaller contracts added after the first test pass.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "netlist/library.hpp"
#include "rl/agent.hpp"

namespace afp {
namespace {

TEST(BlockPinForNet, SpreadsAlongTheEdge) {
  const geom::Rect r{0, 0, 12, 6};
  // North edge: x varies with net index, y fixed at the top.
  std::set<double> xs;
  for (std::size_t ni = 0; ni < 5; ++ni) {
    const auto p = route::block_pin_for_net(r, 0, ni);
    EXPECT_DOUBLE_EQ(p.y, 6.0);
    EXPECT_GT(p.x, 0.0);
    EXPECT_LT(p.x, 12.0);
    xs.insert(p.x);
  }
  EXPECT_EQ(xs.size(), 5u);  // five distinct slots
  // East edge: y varies instead.
  const auto p0 = route::block_pin_for_net(r, 1, 0);
  const auto p1 = route::block_pin_for_net(r, 1, 1);
  EXPECT_DOUBLE_EQ(p0.x, 12.0);
  EXPECT_NE(p0.y, p1.y);
}

TEST(BlockPinForNet, SlotsRepeatModulo5) {
  const geom::Rect r{0, 0, 10, 10};
  const auto a = route::block_pin_for_net(r, 0, 2);
  const auto b = route::block_pin_for_net(r, 0, 7);
  EXPECT_EQ(a, b);
}

TEST(LayoutLanes, CollinearNetsSeparate) {
  // Two nets whose conduits global routing would put on the same line end
  // up on different lanes: no same-layer overlap between their wires.
  netlist::Netlist nl = netlist::make_ota_small();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  auto inst = floorplan::make_instance(g);
  std::vector<geom::Rect> rects;
  double x = 0.0;
  for (const auto& b : inst.blocks) {
    rects.push_back({x, 0.0, b.shapes[1].w, b.shapes[1].h});
    x += b.shapes[1].w + 3.0;
  }
  const auto gr = route::global_route(inst, rects);
  const auto layout = layoutgen::generate_layout(inst, rects, gr);
  for (std::size_t i = 0; i < layout.wires.size(); ++i) {
    for (std::size_t j = i + 1; j < layout.wires.size(); ++j) {
      const auto& a = layout.wires[i];
      const auto& b = layout.wires[j];
      if (a.net == b.net || a.layer != b.layer) continue;
      EXPECT_FALSE(a.rect.overlaps(b.rect))
          << a.net << " vs " << b.net;
    }
  }
}

TEST(LayoutLanes, PinPadsCoverLaneShifts) {
  // Every net's wires must touch every one of its pin pads (no opens), for
  // several circuits and placements.
  std::mt19937_64 rng(5);
  for (const char* name : {"ota_small", "ota1", "driver"}) {
    netlist::Netlist nl;
    for (const auto& e : netlist::circuit_registry()) {
      if (e.name == name) nl = e.make();
    }
    auto g = graphir::build_graph(nl, structrec::recognize(nl));
    auto inst = floorplan::make_instance(g);
    metaheur::SAParams p;
    p.iterations = 400;
    const auto base = metaheur::run_sa(inst, p, rng);
    const auto gr = route::global_route(inst, base.rects);
    if (gr.failed_nets > 0) continue;
    const auto layout = layoutgen::generate_layout(inst, base.rects, gr);
    const auto lvs = layoutgen::run_lvs(layout);
    EXPECT_TRUE(lvs.open_nets.empty())
        << name << ": " << (lvs.open_nets.empty() ? "" : lvs.open_nets[0]);
  }
}

TEST(ActorCritic, GradientsReachEveryParameter) {
  std::mt19937_64 rng(3);
  rl::ActorCritic net(rl::PolicyConfig::fast(), rng);
  num::Tensor masks = num::Tensor::randn({2, 6, 32, 32}, rng, 0.3f);
  num::Tensor node = num::Tensor::randn({2, 32}, rng);
  num::Tensor graph = num::Tensor::randn({2, 32}, rng);
  const auto out = net.forward(masks, node, graph);
  // Combined loss touching both heads.
  num::Tensor loss =
      num::mean_all(num::square(out.logits)) + num::mean_all(num::square(out.value));
  for (auto& p : net.parameters()) p.zero_grad();
  loss.backward();
  int params_with_grad = 0, total = 0;
  for (const auto& p : net.parameters()) {
    ++total;
    double sq = 0.0;
    for (float gv : p.grad()) sq += static_cast<double>(gv) * gv;
    if (sq > 0.0) ++params_with_grad;
  }
  EXPECT_EQ(params_with_grad, total);
}

TEST(RewardModel, GradientsReachEncoder) {
  std::mt19937_64 rng(4);
  rgcn::RewardModel model(rng);
  auto nl = netlist::make_ota2();
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  num::Tensor pred = model.predict(g);
  for (auto& p : model.parameters()) p.zero_grad();
  num::mean_all(num::square(pred)).backward();
  int nonzero = 0, total = 0;
  for (const auto& p : model.parameters()) {
    ++total;
    double sq = 0.0;
    for (float gv : p.grad()) sq += static_cast<double>(gv) * gv;
    if (sq > 0.0) ++nonzero;
  }
  // All encoder relation weights for relations present in the graph plus
  // the head must receive gradient; empty relations (no such edges) get
  // none.  At minimum the vast majority of parameters are reached.
  EXPECT_GT(nonzero, total / 2);
}

TEST(StageTimings, TotalSumsStages) {
  core::StageTimings t;
  t.recognition_s = 0.5;
  t.floorplan_s = 1.5;
  t.route_s = 0.25;
  t.layout_s = 0.75;
  EXPECT_DOUBLE_EQ(t.total(), 3.0);
}

TEST(NewCircuits, FoldedCascodeGraphShape) {
  netlist::Netlist nl = netlist::make_folded_cascode();
  const auto rec = structrec::recognize(nl);
  EXPECT_EQ(rec.structures.size(), 10u);
  int pairs = 0;
  for (const auto& s : rec.structures) {
    pairs += structrec::is_matched_pair(s.type) ? 1 : 0;
  }
  EXPECT_EQ(pairs, 3);  // diff pair + both cascode pairs
  auto g = graphir::build_graph(nl, rec);
  const auto spec = graphir::default_constraints(g);
  EXPECT_EQ(spec.self_syms.size(), 3u);
}

TEST(NewCircuits, EndToEndPipeline) {
  std::mt19937_64 rng(6);
  core::PipelineConfig cfg;
  cfg.options = {{"iterations", "400"}};
  core::FloorplanPipeline pipe(cfg);
  for (auto make : {netlist::make_folded_cascode, netlist::make_charge_pump,
                    netlist::make_bandgap}) {
    const auto res = pipe.run(make(), core::Method::kSA, rng);
    EXPECT_DOUBLE_EQ(geom::total_pairwise_overlap(res.rects), 0.0);
    EXPECT_EQ(res.route.failed_nets, 0) << res.instance.name;
    EXPECT_TRUE(res.lvs.open_nets.empty()) << res.instance.name;
  }
}

TEST(Metaheur, AutoSpacingScalesWithCanvas) {
  // The resolved auto spacing equals one grid cell: larger circuits get
  // proportionally larger routing margins.
  std::mt19937_64 rng(7);
  auto small_nl = netlist::make_ota_small();
  auto big_nl = netlist::make_bias2();
  auto gs = graphir::build_graph(small_nl, structrec::recognize(small_nl));
  auto gb = graphir::build_graph(big_nl, structrec::recognize(big_nl));
  const auto is = floorplan::make_instance(gs);
  const auto ib = floorplan::make_instance(gb);
  metaheur::SAParams p;
  p.iterations = 150;
  const auto rs = metaheur::run_sa(is, p, rng);
  const auto rb = metaheur::run_sa(ib, p, rng);
  // Indirect check: both produce legal floorplans whose bounding box
  // exceeds pure block area (spacing reserved).
  EXPECT_GT(geom::bounding_box(rs.rects).area(), is.total_block_area());
  EXPECT_GT(geom::bounding_box(rb.rects).area(), ib.total_block_area());
}

}  // namespace
}  // namespace afp
