// Verifies the paper-scale configuration objects build the exact
// architecture Section IV describes (shape-level checks only; training at
// that scale is an offline job).
#include <gtest/gtest.h>

#include "core/training.hpp"
#include "rl/policy.hpp"

namespace afp {
namespace {

TEST(PaperConfig, PolicyMatchesSectionIVD3) {
  std::mt19937_64 rng(1);
  const rl::PolicyConfig cfg = rl::PolicyConfig::paper();
  // 3x3 stride-1 convs with 16,32,32,64,64 channels; 512-dim FC; three
  // 4x4 stride-2 deconvs with 32,16,8 channels.
  EXPECT_EQ(cfg.conv_channels, (std::vector<int>{16, 32, 32, 64, 64}));
  EXPECT_EQ(cfg.conv_strides, (std::vector<int>{1, 1, 1, 1, 1}));
  EXPECT_EQ(cfg.feat_dim, 512);
  EXPECT_EQ(cfg.deconv_channels, (std::vector<int>{32, 16, 8}));
  EXPECT_EQ(cfg.grid, 32);
  EXPECT_EQ(cfg.emb_dim, 32);

  rl::ActorCritic net(cfg, rng);
  // Joint (shape, position) action space 3 x 32 x 32 = 3072 (§IV-D1).
  EXPECT_EQ(net.action_space(), 3072);
  // Forward shape sanity at batch 1.
  num::Tensor masks = num::Tensor::zeros({1, 6, 32, 32});
  num::Tensor emb = num::Tensor::zeros({1, 32});
  const auto out = net.forward(masks, emb, emb);
  EXPECT_EQ(out.logits.shape(), (num::Shape{1, 3072}));
  EXPECT_EQ(out.value.shape(), (num::Shape{1}));
}

TEST(PaperConfig, TrainingScheduleMatchesSectionVA) {
  const auto opt = core::TrainOptions::paper();
  EXPECT_EQ(opt.ppo.n_envs, 16);                 // 16 parallel envs
  EXPECT_EQ(opt.hcl.episodes_per_circuit, 4096); // 4096 episodes/circuit
  EXPECT_DOUBLE_EQ(opt.hcl.p_circuit, 0.5);
  EXPECT_DOUBLE_EQ(opt.hcl.p_constraint, 0.3);
  // The five training circuits of §IV-D5.
  EXPECT_EQ(opt.hcl.circuits.size(), 5u);
}

TEST(PaperConfig, RewardWeightsMatchSectionIVD4) {
  const floorplan::RewardWeights w;
  EXPECT_DOUBLE_EQ(w.alpha, 1.0);
  EXPECT_DOUBLE_EQ(w.beta, 5.0);
  EXPECT_DOUBLE_EQ(w.gamma, 5.0);
  EXPECT_DOUBLE_EQ(w.violation_penalty, -50.0);
}

TEST(PaperConfig, FastPresetIsStrictlySmaller) {
  const auto paper = rl::PolicyConfig::paper();
  const auto fast = rl::PolicyConfig::fast();
  std::mt19937_64 r1(1), r2(1);
  rl::ActorCritic big(paper, r1);
  rl::ActorCritic small(fast, r2);
  EXPECT_LT(small.parameter_count(), big.parameter_count() / 100);
  EXPECT_EQ(small.action_space(), big.action_space());  // same MDP
}

}  // namespace
}  // namespace afp
