#include <gtest/gtest.h>

#include "netlist/library.hpp"
#include "structrec/structrec.hpp"

namespace afp::structrec {
namespace {

using netlist::circuit_registry;

int count_type(const Recognition& rec, StructureType t) {
  int n = 0;
  for (const auto& s : rec.structures) {
    if (s.type == t) ++n;
  }
  return n;
}

TEST(Recognize, PaperBlockCounts) {
  // The reproduction's circuits must decompose into exactly the paper's
  // functional-block counts (Table I / Section IV-D5).
  for (const auto& entry : circuit_registry()) {
    const auto rec = recognize(entry.make());
    EXPECT_EQ(static_cast<int>(rec.structures.size()), entry.expected_blocks)
        << entry.name;
  }
}

TEST(Recognize, EveryDeviceAssignedExactlyOnce) {
  for (const auto& entry : circuit_registry()) {
    const auto nl = entry.make();
    const auto rec = recognize(nl);
    ASSERT_EQ(rec.device_to_structure.size(),
              static_cast<std::size_t>(nl.num_devices()));
    std::vector<int> seen(static_cast<std::size_t>(nl.num_devices()), 0);
    for (const auto& s : rec.structures) {
      for (int d : s.devices) ++seen[static_cast<std::size_t>(d)];
    }
    for (int d = 0; d < nl.num_devices(); ++d) {
      EXPECT_EQ(seen[static_cast<std::size_t>(d)], 1) << entry.name;
      EXPECT_GE(rec.device_to_structure[static_cast<std::size_t>(d)], 0);
    }
  }
}

TEST(Recognize, OtaSmallStructures) {
  const auto rec = recognize(netlist::make_ota_small());
  EXPECT_EQ(count_type(rec, StructureType::kDiffPairN), 1);
  EXPECT_EQ(count_type(rec, StructureType::kCurrentMirrorP), 1);
  EXPECT_EQ(count_type(rec, StructureType::kSingleNmos), 1);
}

TEST(Recognize, Ota2HasCascodePair) {
  const auto rec = recognize(netlist::make_ota2());
  EXPECT_EQ(count_type(rec, StructureType::kDiffPairN), 1);
  EXPECT_EQ(count_type(rec, StructureType::kCascodePairN), 1);
  EXPECT_EQ(count_type(rec, StructureType::kCurrentMirrorP), 1);
}

TEST(Recognize, LatchHasCrossCoupledPair) {
  const auto rec = recognize(netlist::make_rs_latch());
  EXPECT_EQ(count_type(rec, StructureType::kCrossCoupledN), 1);
}

TEST(Recognize, ComparatorHasBothCrossCoupledTypes) {
  const auto rec = recognize(netlist::make_comparator());
  EXPECT_EQ(count_type(rec, StructureType::kCrossCoupledN), 1);
  EXPECT_EQ(count_type(rec, StructureType::kCrossCoupledP), 1);
  EXPECT_EQ(count_type(rec, StructureType::kDiffPairN), 1);
}

TEST(Recognize, Bias2HasResistorString) {
  const auto rec = recognize(netlist::make_bias2());
  EXPECT_EQ(count_type(rec, StructureType::kResistorString), 1);
  // Mirror tree: one 4-device PMOS mirror and two NMOS mirrors.
  EXPECT_EQ(count_type(rec, StructureType::kCurrentMirrorP), 1);
  EXPECT_EQ(count_type(rec, StructureType::kCurrentMirrorN), 2);
}

TEST(Recognize, DriverHasPowerDevice) {
  const auto rec = recognize(netlist::make_driver());
  EXPECT_EQ(count_type(rec, StructureType::kPowerDevice), 1);
}

TEST(Recognize, MirrorGroupsKeepDiodeMember) {
  const auto nl = netlist::make_bias2();
  const auto rec = recognize(nl);
  for (const auto& s : rec.structures) {
    if (s.type != StructureType::kCurrentMirrorN &&
        s.type != StructureType::kCurrentMirrorP)
      continue;
    EXPECT_GE(s.devices.size(), 2u);
    bool diode = false;
    for (int d : s.devices) {
      const auto& dev = nl.device(d);
      diode = diode || dev.drain() == dev.gate();
    }
    EXPECT_TRUE(diode);
  }
}

TEST(Recognize, StructureParametersPopulated) {
  const auto rec = recognize(netlist::make_ota2());
  for (const auto& s : rec.structures) {
    EXPECT_GT(s.area_um2, 0.0) << s.name;
    EXPECT_GT(s.stripe_width_um, 0.0) << s.name;
    EXPECT_GE(s.pin_count, 1) << s.name;
    EXPECT_GE(s.routing_direction, 0);
    EXPECT_LE(s.routing_direction, 3);
  }
}

TEST(Recognize, Deterministic) {
  const auto r1 = recognize(netlist::make_driver());
  const auto r2 = recognize(netlist::make_driver());
  ASSERT_EQ(r1.structures.size(), r2.structures.size());
  for (std::size_t i = 0; i < r1.structures.size(); ++i) {
    EXPECT_EQ(r1.structures[i].name, r2.structures[i].name);
    EXPECT_EQ(r1.structures[i].type, r2.structures[i].type);
  }
}

TEST(Recognize, MatchedPairClassifier) {
  EXPECT_TRUE(is_matched_pair(StructureType::kDiffPairN));
  EXPECT_TRUE(is_matched_pair(StructureType::kCrossCoupledP));
  EXPECT_TRUE(is_matched_pair(StructureType::kCascodePairN));
  EXPECT_FALSE(is_matched_pair(StructureType::kCurrentMirrorN));
  EXPECT_FALSE(is_matched_pair(StructureType::kCapSingle));
}

TEST(Recognize, TypeNamesUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (int t = 0; t < kNumStructureTypes; ++t) {
    const std::string n = to_string(static_cast<StructureType>(t));
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(names.insert(n).second) << "duplicate name " << n;
  }
}

TEST(Recognize, DiffPairRequiresNonSupplySource) {
  // Two matched PMOS with sources on VDD are NOT a diff pair.
  netlist::Netlist nl("not_dp");
  nl.add_device({"a", netlist::DeviceType::kPmos, {"x", "g1", "VDD", "VDD"}, 2.0, 0.18, 1});
  nl.add_device({"b", netlist::DeviceType::kPmos, {"y", "g2", "VDD", "VDD"}, 2.0, 0.18, 1});
  const auto rec = recognize(nl);
  EXPECT_EQ(rec.structures.size(), 2u);
  EXPECT_EQ(count_type(rec, StructureType::kDiffPairP), 0);
}

TEST(Recognize, MismatchedSizesAreNotAPair) {
  netlist::Netlist nl("not_dp2");
  nl.add_device({"a", netlist::DeviceType::kNmos, {"x", "g1", "t", "VSS"}, 2.0, 0.18, 1});
  nl.add_device({"b", netlist::DeviceType::kNmos, {"y", "g2", "t", "VSS"}, 4.0, 0.18, 1});
  const auto rec = recognize(nl);
  EXPECT_EQ(count_type(rec, StructureType::kDiffPairN), 0);
}

}  // namespace
}  // namespace afp::structrec
