// afp_chaos — deterministic misbehaving-client harness for afpd.
//
//   afp_chaos --socket PATH [--spawn path/to/afpd] [--seed N]
//             [--good N] [--chaos N] [--iters N] [--write-reports DIR]
//   afp_chaos --socket PATH --spawn path/to/afpd --kill-test
//
// The default mode runs two populations against one daemon at once:
//
//   * `--good N` well-behaved sessions submitting real jobs and awaiting
//     every result.  Their report bytes must stay BITWISE IDENTICAL to an
//     in-process JobService::run_job of the same spec (modulo the timings
//     line) — chaos on neighbouring sessions must not perturb them — and
//     every submitted job must get its terminal result frame (results are
//     never droppable).
//   * `--chaos N` adversarial sessions, one seeded actor each (SplitMix64
//     over --seed ^ actor index, so a rerun replays the same abuse):
//     malformed-request floods, raw junk bytes, mid-frame stalls,
//     half-open sockets that never answer keepalives, slow readers, and
//     random disconnects with jobs in flight.  These sessions are allowed
//     (expected!) to be ejected; the harness only asserts the daemon
//     survives them.
//
// With --spawn the daemon is started with aggressive resilience knobs
// (short idle timeout and write deadline, small queue bound, low strike
// limit) so every defence actually fires during the run, and is SIGTERMed
// afterwards — a non-zero daemon exit (unclean drain) fails the harness.
//
// --kill-test exercises crash recovery instead: submit long jobs, SIGKILL
// the daemon mid-run, restart it on the same journal, and require every
// orphaned job to come back from the `orphans` request as a structured
// `internal` error.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/job_service.hpp"
#include "core/report.hpp"
#include "netlist/library.hpp"
#include "service/client.hpp"
#include "service/json.hpp"

namespace {

using afp::service::Client;
using afp::service::JsonValue;

struct Args {
  std::string socket_path;
  std::string spawn;
  std::uint64_t seed = 1;
  int good = 3;
  int chaos = 6;
  int iters = 60;
  std::string write_reports;
  bool kill_test = false;
};

int usage(int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: afp_chaos --socket PATH [--spawn AFPD] [--seed N]\n"
               "                 [--good N] [--chaos N] [--iters N]\n"
               "                 [--write-reports DIR] [--kill-test]\n");
  return rc;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// "timings" and "tt_cache" are the report's non-deterministic members.
std::string normalize_timings(std::string report) {
  for (const char* member : {"\"timings\": {", "\"tt_cache\": {"}) {
    const std::size_t at = report.find(member);
    if (at == std::string::npos) continue;
    const std::size_t open = report.find('{', at);
    const std::size_t close = report.find('}', open);
    if (close == std::string::npos) continue;
    report.replace(open, close - open + 1, "{}");
  }
  return report;
}

std::string config_json(int iterations) {
  return "{\"optimizer\": \"sa\", \"search\": {\"iterations\": " +
         std::to_string(iterations) + "}}";
}

// The bytes a served result's "report" member must match: the exact same
// pipeline run in-process (what `afp_cli --report-json` emits too).
std::string reference_report(const std::string& circuit, int iterations,
                             std::uint64_t seed) {
  afp::core::JobSpec spec;
  spec.name = circuit;
  for (const auto& e : afp::netlist::circuit_registry()) {
    if (e.name == circuit) spec.netlist = e.make();
  }
  spec.config.search.budget.iterations = iterations;
  const afp::core::JobReport rep =
      afp::core::JobService::run_job(spec, 0, seed, nullptr, {});
  return afp::core::report_json(rep.result, rep.name, rep.optimizer,
                                rep.options, rep.search, rep.seed);
}

std::vector<std::string> g_failures;
std::mutex g_mu;

void fail(const std::string& what) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_failures.push_back(what);
}

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ----------------------------------------------------------- chaos actors ---
// Every actor is expected to misbehave and be punished; exceptions (EOF,
// ECONNRESET, ejection) are the success path, so they are swallowed.  The
// daemon's health is asserted elsewhere, by the good population and the
// final control probe.

void actor_malformed_flood(const std::string& sock, std::uint64_t rng) {
  static const char* kPayloads[] = {
      "{\"type\": \"teleport\"}",
      "{\"type\": \"submit\"}",
      "{\"type\": \"cancel\"}",
      "[\"not\", \"an\", \"object\"]",
      "{\"type\": \"submit\", \"circuit\": \"no_such_circuit\"}",
  };
  try {
    Client c = Client::connect_unix(sock);
    const int n = 8 + static_cast<int>(splitmix64(rng) % 24);
    for (int i = 0; i < n; ++i) {
      c.send_frame(kPayloads[splitmix64(rng) % 5]);
    }
    for (int i = 0; i < 2 * n; ++i) (void)c.read_frame();  // until EOF throws
  } catch (const std::exception&) {
  }
}

void actor_junk_bytes(const std::string& sock, std::uint64_t rng) {
  try {
    Client c = Client::connect_unix(sock);
    std::string junk = "GET /chaos HTTP/1.1\r\n\r\n";
    junk.resize(8 + splitmix64(rng) % junk.size());
    c.send_raw(junk);
    for (int i = 0; i < 4; ++i) (void)c.read_frame();
  } catch (const std::exception&) {
  }
}

void actor_midframe_stall(const std::string& sock, std::uint64_t rng) {
  try {
    Client c = Client::connect_unix(sock);
    // A frame claiming 4 KiB, a dribble of bytes, a stall, then either a
    // half-close or a hard drop — never the rest of the frame.
    std::string prefix(4, '\0');
    prefix[2] = '\x10';
    c.send_raw(prefix);
    c.send_raw(std::string(1 + splitmix64(rng) % 32, '{'));
    sleep_ms(50 + splitmix64(rng) % 250);
    if (splitmix64(rng) % 2 == 0) {
      c.shutdown_write();
      for (int i = 0; i < 4; ++i) (void)c.read_frame();
    }
  } catch (const std::exception&) {
  }
}

void actor_half_open(const std::string& sock, std::uint64_t rng) {
  try {
    Client c = Client::connect_unix(sock);
    // Say nothing, answer nothing: the server's keepalive probe goes
    // unacknowledged and the idle reap must disconnect us.
    sleep_ms(1200 + splitmix64(rng) % 600);
    for (int i = 0; i < 4; ++i) (void)c.read_frame();  // keepalive, error, EOF
  } catch (const std::exception&) {
  }
}

// Slow but compliant: stops reading for a while (under the write deadline),
// then catches up.  Progress frames may drop; its RESULTS must all arrive.
void actor_slow_reader(const std::string& sock, std::uint64_t rng, int iters,
                       std::atomic<int>* results_seen) {
  try {
    Client c = Client::connect_unix(sock);
    const auto a = c.submit("ota_small", 1 + splitmix64(rng) % 1000, 0,
                            config_json(iters));
    const auto b = c.submit("ota_small", 1 + splitmix64(rng) % 1000, 0,
                            config_json(iters));
    sleep_ms(300 + splitmix64(rng) % 500);  // stall well under the deadline
    (void)c.await_result(a.job);
    results_seen->fetch_add(1);
    (void)c.await_result(b.job);
    results_seen->fetch_add(1);
  } catch (const std::exception& e) {
    fail(std::string("slow reader lost a result: ") + e.what());
  }
}

void actor_random_disconnect(const std::string& sock, std::uint64_t rng) {
  try {
    Client c = Client::connect_unix(sock);
    // A job that would run for minutes, then vanish without reading a
    // single frame: the disconnect must cancel it server-side.
    c.send_frame("{\"type\": \"submit\", \"circuit\": \"ota_small\", "
                 "\"seed\": " + std::to_string(1 + splitmix64(rng) % 1000) +
                 ", \"config\": " + config_json(1 << 28) + "}");
    sleep_ms(splitmix64(rng) % 200);
  } catch (const std::exception&) {
  }
}

// ---------------------------------------------------------------- spawning ---

pid_t spawn_afpd(const std::string& afpd, const std::string& sock,
                 const std::string& journal) {
  ::unlink(sock.c_str());
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("afp_chaos: fork");
    std::exit(1);
  }
  if (pid == 0) {
    // Aggressive knobs so every resilience path actually fires under the
    // ~2 s of chaos: 1 s idle reap (0.5 s keepalive probe), 2 s write
    // deadline, a small queue bound, a low strike limit.
    if (journal.empty()) {
      ::execl(afpd.c_str(), "afpd", "--socket", sock.c_str(), "--quiet",
              "--max-sessions", "64", "--session-quota", "64",
              "--idle-timeout", "1", "--write-deadline", "2",
              "--queue-frames", "16", "--strike-limit", "8",
              static_cast<char*>(nullptr));
    } else {
      ::execl(afpd.c_str(), "afpd", "--socket", sock.c_str(), "--quiet",
              "--max-sessions", "64", "--session-quota", "64",
              "--idle-timeout", "1", "--write-deadline", "2",
              "--queue-frames", "16", "--strike-limit", "8", "--journal",
              journal.c_str(), static_cast<char*>(nullptr));
    }
    std::perror("afp_chaos: exec afpd");
    _exit(127);
  }
  for (int tries = 0; tries < 200; ++tries) {
    try {
      Client probe = Client::connect_unix(sock);
      probe.ping();
      return pid;
    } catch (const std::exception&) {
      sleep_ms(50);
    }
  }
  std::fprintf(stderr, "afp_chaos: daemon did not come up\n");
  ::kill(pid, SIGKILL);
  std::exit(1);
}

int reap_daemon(pid_t pid, int sig) {
  ::kill(pid, sig);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

// ---------------------------------------------------------------- kill test ---

int run_kill_test(const Args& args) {
  const std::string journal = args.socket_path + ".journal";
  ::unlink(journal.c_str());
  pid_t pid = spawn_afpd(args.spawn, args.socket_path, journal);
  std::vector<std::uint64_t> jobs;
  {
    Client client = Client::connect_unix(args.socket_path);
    for (int i = 0; i < 2; ++i) {
      const auto acc =
          client.submit("ota_small", 100 + static_cast<std::uint64_t>(i), 0,
                        config_json(1 << 28));
      jobs.push_back(acc.job);
    }
  }
  // The crash: no drain, no journal cleanup, jobs still running.
  (void)reap_daemon(pid, SIGKILL);

  pid = spawn_afpd(args.spawn, args.socket_path, journal);
  int rc = 0;
  try {
    Client client = Client::connect_unix(args.socket_path);
    const JsonValue orph = client.orphans();
    const auto& arr = orph.at("jobs").as_array();
    if (orph.at("count").as_uint("count") != jobs.size() ||
        arr.size() != jobs.size()) {
      std::fprintf(stderr, "afp_chaos: FAIL: expected %zu orphans, got %zu\n",
                   jobs.size(), arr.size());
      rc = 1;
    }
    for (const std::uint64_t job : jobs) {
      bool found = false;
      for (const auto& j : arr) {
        if (j.at("job").as_uint("job") == job &&
            j.at("error").at("kind").as_string() == "internal") {
          found = true;
        }
      }
      if (!found) {
        std::fprintf(stderr,
                     "afp_chaos: FAIL: job %llu missing from orphans\n",
                     static_cast<unsigned long long>(job));
        rc = 1;
      }
    }
    // The restarted daemon still serves jobs, and the replayed journal was
    // reset — a finished job leaves no live entries behind.
    const auto acc = client.submit("ota_small", 9, 0, config_json(40));
    if (client.await_result(acc.job).status != "done") {
      std::fprintf(stderr, "afp_chaos: FAIL: post-restart job failed\n");
      rc = 1;
    }
    // The journal entry is removed just AFTER the result frame is sent;
    // give the completer a moment before requiring an empty journal.
    bool journal_empty = false;
    for (int tries = 0; tries < 100 && !journal_empty; ++tries) {
      const JsonValue st = client.stats();
      journal_empty = st.at("journal_live").as_uint("journal_live") == 0;
      if (!journal_empty) sleep_ms(10);
    }
    if (!journal_empty) {
      std::fprintf(stderr, "afp_chaos: FAIL: journal_live != 0 after run\n");
      rc = 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "afp_chaos: FAIL: kill test: %s\n", e.what());
    rc = 1;
  }
  const int status = reap_daemon(pid, SIGTERM);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "afp_chaos: FAIL: restarted daemon unclean drain\n");
    rc = 1;
  }
  if (rc == 0) {
    std::printf("afp_chaos: kill test PASS: %zu orphaned jobs surfaced as "
                "structured internal errors after restart\n",
                jobs.size());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "afp_chaos: %s expects a value\n", arg.c_str());
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--socket") {
      args.socket_path = value();
    } else if (arg == "--spawn") {
      args.spawn = value();
    } else if (arg == "--seed") {
      args.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--good") {
      args.good = std::atoi(value().c_str());
    } else if (arg == "--chaos") {
      args.chaos = std::atoi(value().c_str());
    } else if (arg == "--iters") {
      args.iters = std::atoi(value().c_str());
    } else if (arg == "--write-reports") {
      args.write_reports = value();
    } else if (arg == "--kill-test") {
      args.kill_test = true;
    } else {
      std::fprintf(stderr, "afp_chaos: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  if (args.socket_path.empty() || args.good < 1 || args.chaos < 0 ||
      args.iters < 1) {
    return usage(2);
  }
  if (args.kill_test) {
    if (args.spawn.empty()) {
      std::fprintf(stderr, "afp_chaos: --kill-test requires --spawn\n");
      return usage(2);
    }
    return run_kill_test(args);
  }

  pid_t daemon_pid = -1;
  if (!args.spawn.empty()) {
    daemon_pid = spawn_afpd(args.spawn, args.socket_path, "");
  }

  // Reference bytes, computed in-process before any chaos starts.
  const std::vector<std::uint64_t> seeds = {7, 8};
  std::map<std::uint64_t, std::string> reference;
  for (const std::uint64_t seed : seeds) {
    reference[seed] = reference_report("ota_small", args.iters, seed);
  }

  std::atomic<int> slow_results{0};
  std::atomic<int> good_results{0};
  std::map<std::uint64_t, std::string> served;  // canonical bytes per seed
  std::mutex served_mu;
  std::vector<std::thread> threads;

  // The good population: every job must finish and match the reference.
  for (int c = 0; c < args.good; ++c) {
    threads.emplace_back([&, c] {
      try {
        Client client = Client::connect_unix(args.socket_path);
        for (const std::uint64_t seed : seeds) {
          const auto acc =
              client.submit("ota_small", seed, 0, config_json(args.iters));
          const auto res = client.await_result(acc.job);
          if (res.status != "done") {
            fail("good client " + std::to_string(c) + " seed " +
                 std::to_string(seed) + ": status " + res.status);
            continue;
          }
          good_results.fetch_add(1);
          {
            std::lock_guard<std::mutex> lock(served_mu);
            served.emplace(seed, res.report_raw);
          }
          if (normalize_timings(res.report_raw) !=
              normalize_timings(reference.at(seed))) {
            fail("good client " + std::to_string(c) + " seed " +
                 std::to_string(seed) +
                 ": served bytes differ from the in-process reference");
          }
        }
      } catch (const std::exception& e) {
        fail("good client " + std::to_string(c) + ": " + e.what());
      }
    });
  }

  // The chaos population: actor kind and behaviour derive only from
  // (--seed, actor index), so a failing run replays exactly.
  int slow_readers = 0;
  for (int a = 0; a < args.chaos; ++a) {
    const std::uint64_t rng = args.seed ^ (0x517cc1b727220a95ULL *
                                           static_cast<std::uint64_t>(a + 1));
    switch (a % 6) {
      case 0:
        threads.emplace_back(actor_malformed_flood, args.socket_path, rng);
        break;
      case 1:
        threads.emplace_back(actor_junk_bytes, args.socket_path, rng);
        break;
      case 2:
        threads.emplace_back(actor_midframe_stall, args.socket_path, rng);
        break;
      case 3:
        threads.emplace_back(actor_half_open, args.socket_path, rng);
        break;
      case 4:
        ++slow_readers;
        threads.emplace_back(actor_slow_reader, args.socket_path, rng,
                             args.iters, &slow_results);
        break;
      default:
        threads.emplace_back(actor_random_disconnect, args.socket_path, rng);
        break;
    }
  }
  for (auto& t : threads) t.join();

  if (good_results.load() !=
      args.good * static_cast<int>(seeds.size())) {
    fail("dropped result frames: good population received " +
         std::to_string(good_results.load()) + "/" +
         std::to_string(args.good * seeds.size()));
  }
  if (slow_results.load() != 2 * slow_readers) {
    fail("dropped result frames: slow readers received " +
         std::to_string(slow_results.load()) + "/" +
         std::to_string(2 * slow_readers));
  }

  // Control probe: the daemon must still be serving, and its counters are
  // printed so a soak log shows which defences fired.
  std::string stats_line = "(unavailable)";
  try {
    Client control = Client::connect_unix(args.socket_path);
    const JsonValue st = control.stats();
    stats_line = "dropped_progress=" +
                 std::to_string(st.at("dropped_progress")
                                    .as_uint("dropped_progress")) +
                 " write_timeouts=" +
                 std::to_string(st.at("write_timeouts")
                                    .as_uint("write_timeouts")) +
                 " idle_timeouts=" +
                 std::to_string(st.at("idle_timeouts")
                                    .as_uint("idle_timeouts")) +
                 " keepalives=" +
                 std::to_string(st.at("keepalives_sent")
                                    .as_uint("keepalives_sent")) +
                 " strikes=" + std::to_string(st.at("strikes")
                                                  .as_uint("strikes")) +
                 " ejections=" +
                 std::to_string(st.at("strike_ejections")
                                    .as_uint("strike_ejections"));
    if (control.ping()) fail("daemon reports draining during the run");
  } catch (const std::exception& e) {
    fail(std::string("daemon unreachable after chaos: ") + e.what());
  }

  if (!args.write_reports.empty()) {
    // The SERVED bytes (one canonical copy per seed), for the driver's
    // bitwise diff against `afp_cli --report-json`.
    for (const std::uint64_t seed : seeds) {
      const auto it = served.find(seed);
      if (it == served.end()) {
        fail("no served report for seed " + std::to_string(seed));
        continue;
      }
      const std::string path = args.write_reports + "/report_seed" +
                               std::to_string(seed) + ".json";
      std::ofstream os(path);
      os << it->second << "\n";
      if (!os) fail("cannot write " + path);
    }
  }

  if (daemon_pid > 0) {
    const int status = reap_daemon(daemon_pid, SIGTERM);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fail("daemon did not drain cleanly (status " + std::to_string(status) +
           ")");
    }
  }

  for (const auto& f : g_failures) {
    std::fprintf(stderr, "afp_chaos: FAIL: %s\n", f.c_str());
  }
  if (g_failures.empty()) {
    std::printf("afp_chaos: PASS: %d good sessions bitwise-clean through %d "
                "chaos actors | %s\n",
                args.good, args.chaos, stats_line.c_str());
  }
  return g_failures.empty() ? 0 : 1;
}
