// afp_loadgen — concurrent-client load generator and parity checker for
// afpd.
//
//   afp_loadgen --socket PATH [--spawn path/to/afpd] --clients N
//               --seeds 7,8,9 [--circuit ota_small[,driver,...]]
//               [--baseline sa] [--iters N] [--write-reports DIR]
//               [--bench-json FILE]
//
// Every client thread opens its own session and submits one job per seed,
// awaiting each result.  --circuit takes a comma-separated mix: client c
// drives circuit list[c % len], so a 64-client run spreads load across
// heterogeneous job sizes.  Afterwards the reports are checked pairwise:
// for a given (circuit, seed), every client must have received
// BYTE-IDENTICAL report bytes — the served pipeline is deterministic and
// session multiplexing must not leak between jobs.  One canonical copy per
// (circuit, seed) is then written to --write-reports as
// report_seed<seed>.json (single circuit) or
// report_<circuit>_seed<seed>.json (mix), formatted exactly like
// `afp_cli --report-json` output so a driver can bitwise-diff the two
// (modulo the timings line).
//
// --spawn forks/execs afpd on the given socket first, SIGTERMs it when the
// load is done, and propagates a non-zero daemon exit — so one invocation
// exercises startup, concurrent load, graceful drain and shutdown.
//
// --bench-json records throughput (jobs/s) and client-observed p50/p99
// submit->result latency at the configured concurrency.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  std::string socket_path;
  std::string spawn;
  int clients = 4;
  std::vector<std::uint64_t> seeds = {7, 8, 9};
  std::vector<std::string> circuits = {"ota_small"};
  std::string baseline = "sa";
  int iters = 60;
  std::string write_reports;
  std::string bench_json;
};

int usage(int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: afp_loadgen --socket PATH [--spawn AFPD] "
               "[--clients N] [--seeds a,b,c]\n"
               "                   [--circuit C] [--baseline B] [--iters N]\n"
               "                   [--write-reports DIR] [--bench-json F]\n");
  return rc;
}

struct JobOutcome {
  std::string circuit;
  std::uint64_t seed = 0;
  double latency_ms = 0.0;
  std::string status;
  std::string report;  ///< raw report bytes, sliced from the result frame
};

// "timings" and "tt_cache" are the report's documented non-deterministic
// members (wall clocks; thread-schedule-dependent hit/miss splits); blank
// both before byte-comparing two runs of the same job.
std::string normalize_timings(std::string report) {
  for (const char* member : {"\"timings\": {", "\"tt_cache\": {"}) {
    const std::size_t at = report.find(member);
    if (at == std::string::npos) continue;
    const std::size_t open = report.find('{', at);
    const std::size_t close = report.find('}', open);
    if (close == std::string::npos) continue;
    report.replace(open, close - open + 1, "{}");
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "afp_loadgen: %s expects a value\n", arg.c_str());
        std::exit(usage(2));
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--socket") {
      args.socket_path = value();
    } else if (arg == "--spawn") {
      args.spawn = value();
    } else if (arg == "--clients") {
      args.clients = std::atoi(value().c_str());
    } else if (arg == "--seeds") {
      args.seeds.clear();
      std::string list = value();
      for (std::size_t at = 0; at < list.size();) {
        const std::size_t comma = list.find(',', at);
        const std::string tok =
            list.substr(at, comma == std::string::npos ? comma : comma - at);
        args.seeds.push_back(std::strtoull(tok.c_str(), nullptr, 10));
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
    } else if (arg == "--circuit") {
      args.circuits.clear();
      std::string list = value();
      for (std::size_t at = 0; at < list.size();) {
        const std::size_t comma = list.find(',', at);
        const std::string tok =
            list.substr(at, comma == std::string::npos ? comma : comma - at);
        if (!tok.empty()) args.circuits.push_back(tok);
        if (comma == std::string::npos) break;
        at = comma + 1;
      }
    } else if (arg == "--baseline") {
      args.baseline = value();
    } else if (arg == "--iters") {
      args.iters = std::atoi(value().c_str());
    } else if (arg == "--write-reports") {
      args.write_reports = value();
    } else if (arg == "--bench-json") {
      args.bench_json = value();
    } else {
      std::fprintf(stderr, "afp_loadgen: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  if (args.socket_path.empty() || args.clients < 1 || args.seeds.empty() ||
      args.circuits.empty() || args.iters < 1) {
    return usage(2);
  }

  // Optionally own the daemon for the duration of the run.
  pid_t daemon_pid = -1;
  if (!args.spawn.empty()) {
    ::unlink(args.socket_path.c_str());
    daemon_pid = ::fork();
    if (daemon_pid < 0) {
      std::perror("afp_loadgen: fork");
      return 1;
    }
    if (daemon_pid == 0) {
      ::execl(args.spawn.c_str(), "afpd", "--socket",
              args.socket_path.c_str(), "--quiet", "--max-sessions", "64",
              "--session-quota", "64", static_cast<char*>(nullptr));
      std::perror("afp_loadgen: exec afpd");
      _exit(127);
    }
    // Wait for the listener (the daemon binds before serving).
    bool up = false;
    for (int tries = 0; tries < 200 && !up; ++tries) {
      try {
        afp::service::Client probe =
            afp::service::Client::connect_unix(args.socket_path);
        probe.ping();
        up = true;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    if (!up) {
      std::fprintf(stderr, "afp_loadgen: daemon did not come up\n");
      ::kill(daemon_pid, SIGKILL);
      return 1;
    }
  }

  const std::string config = "{\"optimizer\": \"" + args.baseline +
                             "\", \"search\": {\"iterations\": " +
                             std::to_string(args.iters) + "}}";
  std::vector<std::vector<JobOutcome>> per_client(
      static_cast<std::size_t>(args.clients));
  std::vector<std::string> failures;
  std::mutex fail_mu;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < args.clients; ++c) {
    threads.emplace_back([&, c] {
      // The circuit mix is assigned round-robin by client index, so a rerun
      // with the same flags reproduces the exact same job set.
      const std::string& circuit =
          args.circuits[static_cast<std::size_t>(c) % args.circuits.size()];
      try {
        afp::service::Client client =
            afp::service::Client::connect_unix(args.socket_path);
        for (const std::uint64_t seed : args.seeds) {
          JobOutcome out;
          out.circuit = circuit;
          out.seed = seed;
          const auto j0 = Clock::now();
          const auto acc = client.submit(circuit, seed, 0, config);
          const auto res = client.await_result(acc.job);
          out.latency_ms =
              std::chrono::duration<double, std::milli>(Clock::now() - j0)
                  .count();
          out.status = res.status;
          out.report = res.report_raw;
          if (res.status != "done") {
            std::lock_guard<std::mutex> lock(fail_mu);
            failures.push_back("client " + std::to_string(c) + " seed " +
                               std::to_string(seed) + ": status " +
                               res.status + " (" + res.error_kind + ": " +
                               res.error_message + ")");
          }
          per_client[static_cast<std::size_t>(c)].push_back(std::move(out));
        }
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(fail_mu);
        failures.push_back("client " + std::to_string(c) + ": " + e.what());
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  // Cross-client parity: for each (circuit, seed), every client's report
  // bytes must be identical (modulo the timings line) — a session must
  // never perturb another session's jobs.
  std::map<std::pair<std::string, std::uint64_t>, std::string> canonical;
  for (int c = 0; c < args.clients; ++c) {
    for (const auto& out : per_client[static_cast<std::size_t>(c)]) {
      if (out.status != "done") continue;
      auto [it, fresh] =
          canonical.emplace(std::make_pair(out.circuit, out.seed), out.report);
      if (!fresh &&
          normalize_timings(it->second) != normalize_timings(out.report)) {
        failures.push_back(out.circuit + " seed " + std::to_string(out.seed) +
                           ": client " + std::to_string(c) +
                           " received different report bytes");
      }
    }
  }

  if (!args.write_reports.empty()) {
    for (const auto& [key, report] : canonical) {
      // Single-circuit runs keep the legacy name the smoke driver diffs.
      const std::string path =
          args.write_reports + "/report_" +
          (args.circuits.size() > 1 ? key.first + "_seed" : "seed") +
          std::to_string(key.second) + ".json";
      std::ofstream os(path);
      os << report << "\n";  // afp_cli's write_file appends one newline too
      if (!os) failures.push_back("cannot write " + path);
    }
  }

  std::vector<double> latencies;
  std::size_t jobs = 0;
  for (const auto& outs : per_client) {
    for (const auto& out : outs) {
      latencies.push_back(out.latency_ms);
      ++jobs;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  auto pct = [&](double p) {
    if (latencies.empty()) return 0.0;
    const auto at = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1));
    return latencies[at];
  };
  const double jobs_per_s = wall_s > 0.0 ? static_cast<double>(jobs) / wall_s
                                         : 0.0;
  std::printf(
      "loadgen: %d clients x %zu jobs | %.2fs wall | %.1f jobs/s | "
      "p50 %.1f ms | p99 %.1f ms\n",
      args.clients, args.seeds.size(), wall_s, jobs_per_s, pct(0.5),
      pct(0.99));
  if (!args.bench_json.empty()) {
    std::string mix;
    for (const auto& c : args.circuits) {
      if (!mix.empty()) mix += ",";
      mix += c;
    }
    std::ofstream os(args.bench_json);
    os << "{\n"
       << "  \"bench\": \"service\",\n"
       << "  \"clients\": " << args.clients << ",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"circuit\": \"" << mix << "\",\n"
       << "  \"baseline\": \"" << args.baseline << "\",\n"
       << "  \"iters\": " << args.iters << ",\n"
       << "  \"wall_s\": " << wall_s << ",\n"
       << "  \"jobs_per_s\": " << jobs_per_s << ",\n"
       << "  \"p50_ms\": " << pct(0.5) << ",\n"
       << "  \"p99_ms\": " << pct(0.99) << "\n"
       << "}\n";
  }

  // Graceful shutdown of an owned daemon: SIGTERM must drain and exit 0.
  if (daemon_pid > 0) {
    ::kill(daemon_pid, SIGTERM);
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      failures.push_back(
          "daemon did not drain cleanly (status " + std::to_string(status) +
          ")");
    }
  }

  for (const auto& f : failures) {
    std::fprintf(stderr, "afp_loadgen: FAIL: %s\n", f.c_str());
  }
  return failures.empty() ? 0 : 1;
}
