// afp — command-line front end for the analog floorplanning library.
//
//   afp list
//       List the built-in circuit registry.
//   afp floorplan <circuit|netlist.sp>
//       [--baseline sa|ga|pso|rlsa|rlsp|sab|pt|pt-bstar] [--restarts N]
//       [--iters N] [--pt-replicas K] [--pt-swap-interval M] [--pt-adaptive]
//       [--constrained] [--seed N] [--svg out.svg] [--report out.txt]
//       Run the full pipeline with a metaheuristic floorplanner.
//   afp train [--episodes N] [--seed N] [--out prefix]
//       Pre-train the R-GCN and HCL-train the PPO agent; writes
//       <prefix>_policy.bin and <prefix>_encoder.bin.
//   afp eval <circuit|netlist.sp> --agent prefix [--attempts K] [--seed N]
//       [--constrained] [--svg out.svg]
//       Floorplan with a trained agent checkpoint (zero-shot).
//   afp graph <circuit|netlist.sp> [--dot out.dot]
//       Print the heterogeneous circuit graph.
//
// Global options: --threads N (numeric thread-pool size; wired through
// TrainOptions::num_threads for `train`), --tier naive|scalar|avx2|auto
// (kernel tier), --help.  See kUsage below for the full text.
//
// A <circuit> argument is first looked up in the registry; otherwise it is
// treated as a path to a SPICE-like netlist file.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "core/pipeline.hpp"
#include "core/training.hpp"
#include "netlist/library.hpp"
#include "nn/checkpoint.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd.hpp"

namespace {

using namespace afp;

const char kUsage[] = R"(afp — analog floorplanning pipeline (R-GCN + PPO + metaheuristics)

usage: afp <command> [args] [options]

commands:
  list                              List the built-in circuit registry.
  floorplan <circuit|netlist.sp>    Run the full pipeline with a
      [--baseline B] [--constrained] metaheuristic floorplanner.
      [--seed N] [--svg out.svg]
      [--report out.txt]
  train [--episodes N] [--seed N]   Pre-train the R-GCN and HCL-train the
      [--out prefix]                PPO agent; writes <prefix>_policy.bin
                                    and <prefix>_encoder.bin.
  eval <circuit|netlist.sp>         Floorplan with a trained agent
      --agent prefix [--attempts K] checkpoint (zero-shot).
      [--seed N] [--constrained]
      [--svg out.svg]
  graph <circuit|netlist.sp>        Print the heterogeneous circuit graph.
      [--dot out.dot]

search options (floorplan):
  --baseline B  sa | ga | pso | rlsa | rlsp | sab | pt | pt-bstar
                (default sa; --method is an alias).  `pt` is parallel
                tempering / replica exchange over sequence pairs,
                `pt-bstar` the same over B*-trees, `sab` is SA over
                B*-trees [15].
  --restarts N  Best-of-N independent searches on the thread pool
                (default 1).  Deterministic for any thread count.
  --iters N     Per-chain move budget for SA / RL-SA / SA-B* and the
                per-replica budget for PT.
  --pt-replicas K       Tempering ladder size (default 3).
  --pt-swap-interval M  Cold-chain moves between replica-exchange rounds
                        (default 8).
  --pt-adaptive         Adapt the swap interval to the observed exchange
                        acceptance rate (still deterministic).
  --report F    Write a machine-checkable run report (full-precision best
                cost, metrics and rectangles; no timings) to file F.

global options:
  --threads N   Size of the shared numeric thread pool (kernels, rollouts,
                metaheuristic restarts).  Default: AFP_NUM_THREADS or the
                hardware concurrency.  Results are identical for any N.
  --tier T      Kernel tier: naive | scalar | avx2 | auto (default auto;
                also settable via AFP_KERNEL_TIER).
  --help, -h    Show this message.

A <circuit> argument is first looked up in the registry (see `afp list`);
otherwise it is treated as a path to a SPICE-like netlist file.
Unknown options are rejected with exit code 2.
)";

/// Options every command accepts.
const std::set<std::string> kGlobalOptions = {"threads", "tier", "help", "h"};

/// Per-command options; anything outside the command's set plus the globals
/// is a usage error (exit code 2) instead of being silently ignored — this
/// also catches options that only exist on a *different* command.
const std::map<std::string, std::set<std::string>> kCommandOptions = {
    {"list", {}},
    {"floorplan",
     {"method", "baseline", "constrained", "seed", "svg", "report",
      "restarts", "iters", "pt-replicas", "pt-swap-interval", "pt-adaptive"}},
    {"train", {"episodes", "seed", "out"}},
    {"eval", {"agent", "attempts", "seed", "constrained", "svg"}},
    {"graph", {"dot"}},
};

/// Minimal flag parser: positional args plus --key [value] options.
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string key = tok.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          a.options[key] = argv[++i];
        } else {
          a.options[key] = "1";
        }
      } else {
        a.positional.push_back(tok);
      }
    }
    return a;
  }

  /// First option key `cmd` does not understand, or empty when all are
  /// known (globals are accepted everywhere).
  std::string first_unknown(const std::string& cmd) const {
    const auto it = kCommandOptions.find(cmd);
    for (const auto& [key, value] : options) {
      if (kGlobalOptions.count(key)) continue;
      if (it != kCommandOptions.end() && it->second.count(key)) continue;
      return key;
    }
    return {};
  }

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

netlist::Netlist load_circuit(const std::string& spec) {
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == spec) return e.make();
  }
  std::ifstream is(spec);
  if (!is) {
    throw std::runtime_error("'" + spec +
                             "' is neither a registry circuit nor a file");
  }
  std::stringstream ss;
  ss << is.rdbuf();
  return netlist::Netlist::from_spice(ss.str());
}

void print_result(const core::PipelineResult& res) {
  std::printf("blocks: %zu\n", res.recognition.structures.size());
  for (const auto& s : res.recognition.structures) {
    std::printf("  %-26s %-18s %8.1f um2\n", s.name.c_str(),
                structrec::to_string(s.type).c_str(), s.area_um2);
  }
  std::printf("floorplan: area %.1f um2 | dead space %.1f%% | HPWL %.1f um | "
              "reward %.2f | constraints %s\n",
              res.eval.area, res.eval.dead_space * 100.0, res.eval.hpwl,
              res.eval.reward, res.eval.constraints_ok ? "ok" : "VIOLATED");
  std::printf("routing: %zu/%zu nets | %.1f um | %d failed\n",
              res.route.trees.size(), res.instance.nets.size(),
              res.route.total_wirelength, res.route.failed_nets);
  std::printf("layout: %zu wires | %zu vias | DRC %s (%zu) | LVS %s "
              "(%zu opens, %zu shorts)\n",
              res.layout.wires.size(), res.layout.vias.size(),
              res.drc.clean() ? "clean" : "dirty", res.drc.violations.size(),
              res.lvs.clean() ? "clean" : "dirty", res.lvs.open_nets.size(),
              res.lvs.shorted.size());
  std::printf("timing: SR %.3fs | floorplan %.3fs | route %.3fs | "
              "layout %.3fs\n",
              res.timings.recognition_s, res.timings.floorplan_s,
              res.timings.route_s, res.timings.layout_s);
}

int cmd_list() {
  std::printf("%-16s %8s %10s %10s\n", "circuit", "devices", "blocks",
              "training");
  for (const auto& e : netlist::circuit_registry()) {
    const auto nl = e.make();
    std::printf("%-16s %8d %10d %10s\n", e.name.c_str(), nl.num_devices(),
                e.expected_blocks, e.in_training_set ? "yes" : "no");
  }
  return 0;
}

/// Deterministic run report: everything a reproducibility check needs
/// (method, best cost, metrics, rectangles, routed length) at full
/// precision, and nothing timing-dependent.  Compared bitwise by the e2e
/// determinism test across thread counts, kernel tiers and repeats.
void write_report(const std::string& path, const std::string& baseline,
                  const core::PipelineResult& res) {
  std::ofstream os(path);
  os.precision(17);
  os << "baseline " << baseline << "\n";
  os << "blocks " << res.rects.size() << "\n";
  os << "cost " << metaheur::sp_cost(res.instance, res.rects) << "\n";
  os << "area " << res.eval.area << "\n";
  os << "dead_space " << res.eval.dead_space << "\n";
  os << "hpwl " << res.eval.hpwl << "\n";
  os << "reward " << res.eval.reward << "\n";
  os << "constraints_ok " << (res.eval.constraints_ok ? 1 : 0) << "\n";
  os << "route_wirelength " << res.route.total_wirelength << "\n";
  os << "layout_wires " << res.layout.wires.size() << " vias "
     << res.layout.vias.size() << "\n";
  for (const auto& r : res.rects) {
    os << "rect " << r.x << " " << r.y << " " << r.w << " " << r.h << "\n";
  }
  if (!os) {
    throw std::runtime_error("failed to write report '" + path + "'");
  }
}

int cmd_floorplan(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp floorplan <circuit> [--baseline sa]\n");
    return 2;
  }
  const auto nl = load_circuit(args.positional[0]);
  // --baseline is the documented spelling; --method stays as an alias.
  const std::string method_s =
      args.has("baseline") ? args.get("baseline", "sa")
                           : args.get("method", "sa");
  struct MethodSpec {
    core::Method method;
    metaheur::Representation pt_rep = metaheur::Representation::kSequencePair;
  };
  const std::map<std::string, MethodSpec> methods = {
      {"sa", {core::Method::kSA}},
      {"ga", {core::Method::kGA}},
      {"pso", {core::Method::kPSO}},
      {"rlsa", {core::Method::kRlSa}},
      {"rlsp", {core::Method::kRlSp}},
      {"sab", {core::Method::kSaBStar}},
      {"sa-bstar", {core::Method::kSaBStar}},
      {"pt", {core::Method::kPT}},
      {"pt-bstar",
       {core::Method::kPT, metaheur::Representation::kBStarTree}}};
  const auto mit = methods.find(method_s);
  if (mit == methods.end()) {
    std::fprintf(stderr, "unknown baseline '%s'\n", method_s.c_str());
    return 2;
  }
  core::PipelineConfig cfg;
  cfg.constrained = args.has("constrained");
  cfg.search.restarts = std::stoi(args.get("restarts", "1"));
  cfg.search.pt.representation = mit->second.pt_rep;
  if (args.has("pt-replicas")) {
    cfg.search.pt.replicas = std::stoi(args.get("pt-replicas", "3"));
  }
  if (args.has("pt-swap-interval")) {
    cfg.search.pt.swap_interval =
        std::stoi(args.get("pt-swap-interval", "8"));
  }
  cfg.search.pt.adaptive_swap = args.has("pt-adaptive");
  if (args.has("iters")) {
    const int iters = std::stoi(args.get("iters", "0"));
    cfg.sa.iterations = iters;
    cfg.rlsa.iterations = iters;
    cfg.bstar.iterations = iters;
    cfg.search.pt.iterations = iters;
  }
  core::FloorplanPipeline pipe(cfg);
  std::mt19937_64 rng(std::stoul(args.get("seed", "1")));
  const auto res = pipe.run(nl, mit->second.method, rng);
  print_result(res);
  if (args.has("svg")) {
    layoutgen::write_svg(args.get("svg", "layout.svg"), res.layout);
    std::printf("wrote %s\n", args.get("svg", "layout.svg").c_str());
  }
  if (args.has("report")) {
    write_report(args.get("report", "report.txt"), method_s, res);
    std::printf("wrote %s\n", args.get("report", "report.txt").c_str());
  }
  return 0;
}

int cmd_train(const Args& args) {
  core::TrainOptions opt = core::TrainOptions::fast(
      static_cast<unsigned>(std::stoul(args.get("seed", "1"))));
  opt.num_threads = std::stoi(args.get("threads", "0"));
  opt.hcl.circuits = {"ota_small", "bias_small", "ota1", "ota2", "bias1"};
  opt.hcl.episodes_per_circuit = std::stoi(args.get("episodes", "64"));
  opt.ppo.n_envs = 4;
  opt.ppo.n_steps = 32;
  opt.ppo.minibatch = 64;
  opt.ppo.lr = 1e-3f;
  std::printf("training: %zu circuits x %d episodes...\n",
              opt.hcl.circuits.size(), opt.hcl.episodes_per_circuit);
  const auto agent = core::train_agent(opt);
  std::printf("done: %zu PPO iterations, final mean episode reward %.2f\n",
              agent.rl_history.size(),
              agent.rl_history.empty()
                  ? 0.0
                  : agent.rl_history.back().mean_episode_reward);
  const std::string prefix = args.get("out", "afp_agent");
  nn::save_module(*agent.policy, prefix + "_policy.bin");
  nn::save_module(*agent.encoder, prefix + "_encoder.bin");
  std::printf("wrote %s_policy.bin and %s_encoder.bin\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp eval <circuit> --agent prefix\n");
    return 2;
  }
  const std::string prefix = args.get("agent", "afp_agent");
  std::mt19937_64 rng(std::stoul(args.get("seed", "1")));
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  nn::load_module(encoder, prefix + "_encoder.bin");
  nn::load_module(policy, prefix + "_policy.bin");

  const auto nl = load_circuit(args.positional[0]);
  core::PipelineConfig cfg;
  cfg.constrained = args.has("constrained");
  cfg.rl_attempts = std::stoi(args.get("attempts", "8"));
  core::FloorplanPipeline pipe(cfg);
  const auto res = pipe.run(nl, policy, encoder, rng);
  print_result(res);
  if (args.has("svg")) {
    layoutgen::write_svg(args.get("svg", "layout.svg"), res.layout);
    std::printf("wrote %s\n", args.get("svg", "layout.svg").c_str());
  }
  return 0;
}

int cmd_graph(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp graph <circuit> [--dot out.dot]\n");
    return 2;
  }
  const auto nl = load_circuit(args.positional[0]);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  graphir::apply_constraints(g, graphir::default_constraints(g));
  std::printf("graph '%s': %d nodes\n", g.name.c_str(), g.num_nodes());
  static const char* kRel[] = {"connectivity", "h-align", "v-align", "h-sym",
                               "v-sym"};
  for (int r = 0; r < graphir::kNumRelations; ++r) {
    std::printf("  %-12s %zu edges\n", kRel[r],
                g.edges[static_cast<std::size_t>(r)].size());
  }
  if (args.has("dot")) {
    std::ofstream os(args.get("dot", "graph.dot"));
    os << "graph g {\n";
    for (int i = 0; i < g.num_nodes(); ++i) {
      os << "  n" << i << " [label=\""
         << g.nodes[static_cast<std::size_t>(i)].name << "\"];\n";
    }
    for (int r = 0; r < graphir::kNumRelations; ++r) {
      for (const auto& [u, v] : g.edges[static_cast<std::size_t>(r)]) {
        os << "  n" << u << " -- n" << v << ";\n";
      }
    }
    os << "}\n";
    std::printf("wrote %s\n", args.get("dot", "graph.dot").c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const Args args = Args::parse(argc, argv, 2);
  if (args.has("help") || args.has("h")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!kCommandOptions.count(cmd)) {
    std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (const std::string unknown = args.first_unknown(cmd); !unknown.empty()) {
    std::fprintf(stderr, "error: unknown option '--%s' for '%s'\n\n",
                 unknown.c_str(), cmd.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  try {
    // Global knobs, honored by every command: pool size and kernel tier.
    if (args.has("threads")) {
      num::set_num_threads(std::stoi(args.get("threads", "0")));
    }
    if (args.has("tier")) {
      num::KernelTier tier;
      if (!num::parse_kernel_tier(args.get("tier", "auto").c_str(), &tier)) {
        std::fprintf(stderr, "unknown kernel tier '%s'\n",
                     args.get("tier", "").c_str());
        return 2;
      }
      num::set_kernel_tier(tier);
    }
    if (cmd == "list") return cmd_list();
    if (cmd == "floorplan") return cmd_floorplan(args);
    if (cmd == "train") return cmd_train(args);
    if (cmd == "eval") return cmd_eval(args);
    if (cmd == "graph") return cmd_graph(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // Unreachable: cmd was validated against kCommandOptions above and every
  // listed command is dispatched in the try block.
  return 2;
}
