// afp — command-line front end for the analog floorplanning library.
//
//   afp list
//       List the built-in circuit registry.
//   afp list-baselines
//       List the registered optimizers: name, encoding, tunable options.
//   afp floorplan <circuit|netlist.sp> | --batch <dir|manifest>
//       [--baseline <name>] [--opt k=v[,k=v...]] [--restarts N] [--iters N]
//       [--time-budget S] [--constrained] [--seed N] [--svg out.svg]
//       [--report out.txt] [--report-json out.json]
//       Run the full pipeline with a registry optimizer — one circuit, or an
//       async batch over a directory of .sp netlists / a manifest file.
//   afp train [--episodes N] [--seed N] [--out prefix]
//       Pre-train the R-GCN and HCL-train the PPO agent; writes
//       <prefix>_policy.bin and <prefix>_encoder.bin.
//   afp eval <circuit|netlist.sp> --agent prefix [--attempts K] [--seed N]
//       [--constrained] [--svg out.svg]
//       Floorplan with a trained agent checkpoint (zero-shot).
//   afp graph <circuit|netlist.sp> [--dot out.dot]
//       Print the heterogeneous circuit graph.
//
// Global options: --threads N (numeric thread-pool size), --tier
// naive|scalar|avx2|auto (kernel tier), --help.  See kUsage below.
//
// Every numeric option is validated; a malformed value (like an unknown
// flag) exits with code 2 and the usage text on stderr.
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "core/job_service.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/training.hpp"
#include "ingest/scenario.hpp"
#include "ingest/spice_parser.hpp"
#include "netlist/library.hpp"
#include "nn/checkpoint.hpp"
#include "numeric/parallel.hpp"
#include "numeric/simd.hpp"

namespace {

using namespace afp;

const char kUsage[] = R"(afp — analog floorplanning pipeline (R-GCN + PPO + metaheuristics)

usage: afp <command> [args] [options]

commands:
  list                              List the built-in circuit registry.
  list-baselines                    List the registered optimizers: name,
                                    encoding and tunable options.
  floorplan <circuit|netlist.sp>    Run the full pipeline with a registry
      [--baseline B] [--opt k=v]    optimizer.  --batch runs an async job
      [--batch dir|manifest]        batch instead of one circuit;
      [--scenario F:S:SEED]         --scenario runs one generated workload
      [--scenario-matrix SPEC]      and --scenario-matrix a whole sweep.
      [--time-budget S]
      [--constrained] [--seed N]
      [--svg out.svg]
      [--report out.txt]
      [--report-json out.json]
  ingest <deck.sp> [--top CELL]     Parse a SPICE deck (.subckt hierarchy,
      [--parse-only]                .param expressions, M/R/C/Q/D/X cards),
      [search options]              elaborate it flat and run the pipeline.
                                    --parse-only stops after elaboration.
                                    Malformed decks exit 2 with file:line.
  train [--episodes N] [--seed N]   Pre-train the R-GCN and HCL-train the
      [--out prefix]                PPO agent; writes <prefix>_policy.bin
                                    and <prefix>_encoder.bin.
  eval <circuit|netlist.sp>         Floorplan with a trained agent
      --agent prefix [--attempts K] checkpoint (zero-shot).
      [--seed N] [--constrained]
      [--svg out.svg]
  graph <circuit|netlist.sp>        Print the heterogeneous circuit graph.
      [--dot out.dot]

search options (floorplan):
  --baseline B  Registry optimizer name (see `afp list-baselines`):
                sa | ga | pso | rlsa | rlsp | sab | pt | pt-bstar
                (default sa; --method and sa-bstar stay as aliases).
  --opt k=v     Set an optimizer option (repeatable; commas separate
                several pairs).  `afp list-baselines` shows each
                optimizer's keys and defaults.
  --restarts N  Best-of-N independent searches on the thread pool
                (default 1).  Deterministic for any thread count.
  --iters N     Override the optimizer's primary budget knob (moves,
                generations, sweeps, episodes or per-replica moves).
  --pt-replicas K       Alias for --opt replicas=K (pt baselines).
  --pt-swap-interval M  Alias for --opt swap_interval=M (pt baselines).
  --pt-adaptive         Alias for --opt adaptive_swap=true (pt baselines).
  --time-budget S  Wall-clock budget in seconds: iteration quanta race the
                deadline (deterministic per completed quantum count).
                Mutually exclusive with --restarts.
  --quanta N    Run exactly N iteration quanta (deterministic fixed-quanta
                mode; no wall clock involved).  Mutually exclusive with
                --restarts.
  --job-timeout S  Hard per-job watchdog deadline in seconds.  A job that
                overruns is terminated at the next quantum/iteration
                boundary with status deadline_exceeded; partial results
                are discarded.
  --max-retries N  Retry a failed job up to N times (retryable error kinds
                only: optimizer_failure, resource_exhausted) with capped
                exponential backoff.  Each attempt draws a fresh
                deterministic seed; default 0.
  --checkpoint F  Persist per-quantum search state to file F (atomic
                write).  Requires --quanta or --time-budget.
  --resume      Resume from --checkpoint F when it exists; the resumed
                run is bitwise identical to an uninterrupted one.
  --batch P     Batch mode: P is a directory (every *.sp file, sorted) or
                a manifest file (one circuit/netlist path per line, #
                comments).  Jobs run concurrently on the thread pool with
                per-job SplitMix64 seeds derived from --seed.  Entries
                that fail to load are skipped (reported as failed with
                kind invalid_config); exit code 3 flags such a partially
                failed batch.
  --report F    Write a machine-checkable text run report (full-precision
                best cost, metrics and rectangles; no timings) to file F.
  --report-json F  Write the JSON run report (single run: one report
                object; batch: batch metadata + per-job reports).  Schema:
                cmake/report_schema.json.
  --scenario F:S:SEED[:ar=..][:ws=..][:plain=1]
                Run one generated workload instead of a circuit: family
                (ota|bias|latch|driver), target block count S (4..5000) and
                generator seed.  Constraint scenarios (symmetry pairs,
                matching groups, keep-outs, pre-placed anchors) are on by
                default; plain=1 suppresses them.  ar= sets a target outline
                aspect, ws= extra canvas whitespace.
  --scenario-matrix FAMS:SIZES:NSEEDS[:key=val...]
                Sweep the cross product: comma-separated families x comma-
                separated sizes x generator seeds 1..NSEEDS, run as a
                deterministic job batch (family-major order; per-job search
                seeds from --seed).  Trailing keys apply to every instance.

global options:
  --threads N   Size of the shared numeric thread pool (kernels, rollouts,
                metaheuristic restarts, batch jobs).  Default:
                AFP_NUM_THREADS or the hardware concurrency.  Results are
                identical for any N.
  --tier T      Kernel tier: naive | scalar | avx2 | auto (default auto;
                also settable via AFP_KERNEL_TIER).
  --help, -h    Show this message.

A <circuit> argument is first looked up in the registry (see `afp list`);
otherwise it is treated as a path to a SPICE-like netlist file.
Unknown options and malformed numeric values are rejected with exit code 2.
)";

/// Usage-level error: message + usage text on stderr, exit code 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Options every command accepts.
const std::set<std::string> kGlobalOptions = {"threads", "tier", "help", "h"};

/// Per-command options; anything outside the command's set plus the globals
/// is a usage error (exit code 2) instead of being silently ignored — this
/// also catches options that only exist on a *different* command.
const std::map<std::string, std::set<std::string>> kCommandOptions = {
    {"list", {}},
    {"list-baselines", {}},
    {"floorplan",
     {"method", "baseline", "constrained", "seed", "svg", "report",
      "report-json", "restarts", "iters", "opt", "batch", "time-budget",
      "quanta", "job-timeout", "max-retries", "checkpoint", "resume",
      "pt-replicas", "pt-swap-interval", "pt-adaptive", "scenario",
      "scenario-matrix"}},
    {"ingest",
     {"top", "parse-only", "method", "baseline", "constrained", "seed",
      "svg", "report", "report-json", "restarts", "iters", "opt",
      "time-budget", "quanta", "job-timeout", "max-retries", "checkpoint",
      "resume", "pt-replicas", "pt-swap-interval", "pt-adaptive"}},
    {"train", {"episodes", "seed", "out"}},
    {"eval", {"agent", "attempts", "seed", "constrained", "svg"}},
    {"graph", {"dot"}},
};

/// Minimal flag parser: positional args plus --key [value] options.
/// Repeated options accumulate (used by --opt).
struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::vector<std::string>> options;

  static Args parse(int argc, char** argv, int from) {
    Args a;
    for (int i = from; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string key = tok.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          a.options[key].push_back(argv[++i]);
        } else {
          a.options[key].push_back("1");
        }
      } else {
        a.positional.push_back(tok);
      }
    }
    return a;
  }

  /// First option key `cmd` does not understand, or empty when all are
  /// known (globals are accepted everywhere).
  std::string first_unknown(const std::string& cmd) const {
    const auto it = kCommandOptions.find(cmd);
    for (const auto& [key, values] : options) {
      if (kGlobalOptions.count(key)) continue;
      if (it != kCommandOptions.end() && it->second.count(key)) continue;
      return key;
    }
    return {};
  }

  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = options.find(key);
    return it == options.end() ? dflt : it->second.back();
  }
  std::vector<std::string> get_all(const std::string& key) const {
    const auto it = options.find(key);
    return it == options.end() ? std::vector<std::string>{} : it->second;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

// ----------------------------------------------- validated numeric parsing
//
// std::stoul/stoi would throw std::invalid_argument on junk like
// `--seed abc` and surface as a generic exit-1 error; numeric options are a
// usage problem and must exit 2 with the usage text, like unknown flags.

long long parse_int_or_die(const Args& args, const std::string& key,
                           long long dflt, long long min_value) {
  const std::string s = args.get(key, std::to_string(dflt));
  long long v = 0;
  if (!metaheur::parse_strict_int(s, &v)) {
    throw UsageError("option '--" + key + "' expects an integer, got '" + s +
                     "'");
  }
  if (v < min_value) {
    throw UsageError("option '--" + key + "' must be >= " +
                     std::to_string(min_value) + ", got '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64_or_die(const Args& args, const std::string& key,
                               std::uint64_t dflt) {
  const std::string s = args.get(key, std::to_string(dflt));
  std::uint64_t v = 0;
  if (!metaheur::parse_strict_uint(s, &v)) {
    throw UsageError("option '--" + key +
                     "' expects an unsigned integer, got '" + s + "'");
  }
  return v;
}

double parse_double_or_die(const Args& args, const std::string& key,
                           double dflt) {
  std::ostringstream d;
  d << dflt;
  const std::string s = args.get(key, d.str());
  double v = 0.0;
  if (!metaheur::parse_strict_double(s, &v)) {
    throw UsageError("option '--" + key + "' expects a finite number, got '" +
                     s + "'");
  }
  return v;
}

netlist::Netlist load_circuit(const std::string& spec) {
  for (const auto& e : netlist::circuit_registry()) {
    if (e.name == spec) return e.make();
  }
  std::ifstream is(spec);
  if (!is) {
    throw std::runtime_error("'" + spec +
                             "' is neither a registry circuit nor a file");
  }
  std::stringstream ss;
  ss << is.rdbuf();
  return netlist::Netlist::from_spice(ss.str());
}

void print_result(const core::PipelineResult& res) {
  std::printf("blocks: %zu\n", res.recognition.structures.size());
  for (const auto& s : res.recognition.structures) {
    std::printf("  %-26s %-18s %8.1f um2\n", s.name.c_str(),
                structrec::to_string(s.type).c_str(), s.area_um2);
  }
  std::printf("floorplan: area %.1f um2 | dead space %.1f%% | HPWL %.1f um | "
              "reward %.2f | constraints %s\n",
              res.eval.area, res.eval.dead_space * 100.0, res.eval.hpwl,
              res.eval.reward, res.eval.constraints_ok ? "ok" : "VIOLATED");
  std::printf("routing: %zu/%zu nets | %.1f um | %d failed\n",
              res.route.trees.size(), res.instance.nets.size(),
              res.route.total_wirelength, res.route.failed_nets);
  std::printf("layout: %zu wires | %zu vias | DRC %s (%zu) | LVS %s "
              "(%zu opens, %zu shorts)\n",
              res.layout.wires.size(), res.layout.vias.size(),
              res.drc.clean() ? "clean" : "dirty", res.drc.violations.size(),
              res.lvs.clean() ? "clean" : "dirty", res.lvs.open_nets.size(),
              res.lvs.shorted.size());
  std::printf("timing: SR %.3fs | floorplan %.3fs | route %.3fs | "
              "layout %.3fs\n",
              res.timings.recognition_s, res.timings.floorplan_s,
              res.timings.route_s, res.timings.layout_s);
  if (res.quanta > 1) {
    std::printf("search: %ld evaluations over %ld wall-clock quanta\n",
                res.evaluations, res.quanta);
  }
}

int cmd_list() {
  std::printf("%-16s %8s %10s %10s\n", "circuit", "devices", "blocks",
              "training");
  for (const auto& e : netlist::circuit_registry()) {
    const auto nl = e.make();
    std::printf("%-16s %8d %10d %10s\n", e.name.c_str(), nl.num_devices(),
                e.expected_blocks, e.in_training_set ? "yes" : "no");
  }
  return 0;
}

int cmd_list_baselines() {
  for (const auto& name : metaheur::optimizer_names()) {
    auto opt = metaheur::make_optimizer(name);
    std::printf("%-10s encoding %s\n", name.c_str(), opt->encoding());
    for (const auto& spec : opt->describe()) {
      std::printf("    %-18s default %-10s %s\n", spec.key.c_str(),
                  spec.value.c_str(), spec.help.c_str());
    }
  }
  return 0;
}

/// Deterministic run report: everything a reproducibility check needs
/// (method, best cost, metrics, rectangles, routed length) at full
/// precision, and nothing timing-dependent.  Compared bitwise by the e2e
/// determinism test across thread counts, kernel tiers and repeats.
void write_report(const std::string& path, const std::string& baseline,
                  const core::PipelineResult& res) {
  std::ofstream os(path);
  os.precision(17);
  os << "baseline " << baseline << "\n";
  os << "blocks " << res.rects.size() << "\n";
  os << "cost " << metaheur::sp_cost(res.instance, res.rects) << "\n";
  os << "area " << res.eval.area << "\n";
  os << "dead_space " << res.eval.dead_space << "\n";
  os << "hpwl " << res.eval.hpwl << "\n";
  os << "reward " << res.eval.reward << "\n";
  os << "constraints_ok " << (res.eval.constraints_ok ? 1 : 0) << "\n";
  os << "route_wirelength " << res.route.total_wirelength << "\n";
  os << "layout_wires " << res.layout.wires.size() << " vias "
     << res.layout.vias.size() << "\n";
  for (const auto& r : res.rects) {
    os << "rect " << r.x << " " << r.y << " " << r.w << " " << r.h << "\n";
  }
  if (!os) {
    throw std::runtime_error("failed to write report '" + path + "'");
  }
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream os(path);
  os << content << "\n";
  if (!os) {
    throw std::runtime_error("failed to write '" + path + "'");
  }
}

/// Resolves --baseline/--method (plus aliases) to a registry name.
std::string baseline_name(const Args& args) {
  std::string name = args.has("baseline") ? args.get("baseline", "sa")
                                          : args.get("method", "sa");
  if (name == "sa-bstar") name = "sab";
  if (!metaheur::OptimizerRegistry::global().contains(name)) {
    std::string known;
    for (const auto& n : metaheur::optimizer_names()) {
      known += (known.empty() ? "" : ", ") + n;
    }
    throw UsageError("unknown baseline '" + name + "' (registered: " + known +
                     "); see `afp list-baselines`");
  }
  return name;
}

/// Collects --opt k=v[,k=v...] pairs plus the --pt-* convenience aliases
/// into one option map.
metaheur::Options gather_options(const Args& args, const std::string& name) {
  metaheur::Options opts;
  for (const auto& arg : args.get_all("opt")) {
    std::stringstream ss(arg);
    std::string pair;
    while (std::getline(ss, pair, ',')) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw UsageError("option '--opt' expects k=v, got '" + pair + "'");
      }
      opts[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  const bool is_pt = name == "pt" || name == "pt-bstar";
  if (!is_pt && (args.has("pt-replicas") || args.has("pt-swap-interval") ||
                 args.has("pt-adaptive"))) {
    throw UsageError("--pt-* options apply to the pt/pt-bstar baselines only "
                     "(got baseline '" + name + "')");
  }
  if (args.has("pt-replicas")) {
    opts["replicas"] =
        std::to_string(parse_int_or_die(args, "pt-replicas", 3, 2));
  }
  if (args.has("pt-swap-interval")) {
    opts["swap_interval"] =
        std::to_string(parse_int_or_die(args, "pt-swap-interval", 8, 1));
  }
  if (args.has("pt-adaptive")) opts["adaptive_swap"] = "true";
  return opts;
}

/// Batch inputs: every *.sp file of a directory (sorted), or the non-empty
/// non-comment lines of a manifest file (registry names or netlist paths).
std::vector<std::string> batch_inputs(const std::string& path) {
  namespace fs = std::filesystem;
  std::vector<std::string> inputs;
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::directory_iterator(path)) {
      if (entry.is_regular_file() && entry.path().extension() == ".sp") {
        inputs.push_back(entry.path().string());
      }
    }
    std::sort(inputs.begin(), inputs.end());
  } else {
    std::ifstream is(path);
    if (!is) {
      throw std::runtime_error("cannot open batch manifest '" + path + "'");
    }
    std::string line;
    while (std::getline(is, line)) {
      const auto from = line.find_first_not_of(" \t\r");
      if (from == std::string::npos || line[from] == '#') continue;
      const auto to = line.find_last_not_of(" \t\r");
      inputs.push_back(line.substr(from, to - from + 1));
    }
  }
  if (inputs.empty()) {
    throw std::runtime_error("batch '" + path +
                             "' contains no netlists (*.sp or manifest "
                             "lines)");
  }
  return inputs;
}

int cmd_floorplan_batch(const Args& args, const core::PipelineConfig& cfg,
                        const std::string& name, std::uint64_t seed) {
  const auto inputs = batch_inputs(args.get("batch", ""));
  // A manifest entry that fails to load (unreadable file, unparsable
  // netlist) must not abort the batch: it is skipped here and reported as a
  // failed job with kind invalid_config.  Runnable jobs keep their manifest
  // position (ids, per-job seeds and checkpoint paths are derived from it),
  // so adding or fixing a broken line never reshuffles sibling results.
  std::vector<core::JobSpec> jobs;
  std::vector<std::size_t> job_pos;
  std::vector<core::JobReport> reports(inputs.size());
  jobs.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    core::JobSpec spec;
    spec.name = std::filesystem::path(inputs[i]).stem().string();
    spec.config = cfg;
    if (!cfg.search.checkpoint_path.empty()) {
      spec.config.search.checkpoint_path =
          cfg.search.checkpoint_path + ".job" + std::to_string(i);
    }
    try {
      spec.netlist = load_circuit(inputs[i]);
    } catch (const std::exception& e) {
      core::JobReport& r = reports[i];
      r.id = i;
      r.name = spec.name;
      r.optimizer = cfg.optimizer;
      r.search = spec.config.search;
      r.seed = core::JobService::job_seed(seed, i);
      r.status = core::JobStatus::kFailed;
      r.error = {core::JobErrorKind::kInvalidConfig, e.what(), i, -1};
      std::fprintf(stderr, "batch: skipping '%s': %s\n", inputs[i].c_str(),
                   e.what());
      continue;
    }
    job_pos.push_back(i);
    jobs.push_back(std::move(spec));
  }

  std::printf("batch: %zu jobs (%zu skipped) | optimizer %s | %d threads | "
              "seed %llu%s\n",
              inputs.size(), inputs.size() - jobs.size(), name.c_str(),
              num::num_threads(), static_cast<unsigned long long>(seed),
              cfg.search.budget.wall_clock_s > 0.0 ? " | time-budgeted" : "");
  std::mutex io_mu;
  core::JobServiceOptions sopts;
  sopts.base_seed = seed;
  sopts.on_progress = [&](const core::JobProgress& p) {
    std::lock_guard<std::mutex> lock(io_mu);
    std::printf("  [%zu] %-16s %s (%.2fs)%s\n", p.id, p.name.c_str(),
                core::to_string(p.status), p.runtime_s,
                p.attempt > 0 ? " [retry]" : "");
  };
  if (!jobs.empty()) {
    // Seed per-job streams from the manifest position, not the compacted
    // vector index, so results are invariant to skipped siblings.
    std::vector<core::JobReport> ran(jobs.size());
    num::parallel_for(
        static_cast<std::int64_t>(jobs.size()), 1,
        [&](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t b = b0; b < b1; ++b) {
            const auto j = static_cast<std::size_t>(b);
            ran[j] = core::JobService::run_job(
                jobs[j], job_pos[j], core::JobService::job_seed(seed,
                                                               job_pos[j]),
                nullptr, sopts.on_progress);
          }
        });
    for (std::size_t j = 0; j < ran.size(); ++j) {
      reports[job_pos[j]] = std::move(ran[j]);
    }
  }

  std::printf("\n%-16s %-10s %12s %12s %10s %10s %8s\n", "job", "status",
              "cost", "HPWL(um)", "reward", "runtime", "quanta");
  std::size_t done = 0;
  for (const auto& r : reports) {
    if (r.status != core::JobStatus::kDone) {
      std::printf("%-16s %-10s %12s %12s %10s %9.2fs %8s  [%s] %s\n",
                  r.name.c_str(), core::to_string(r.status), "-", "-", "-",
                  r.runtime_s, "-", core::to_string(r.error.kind),
                  r.error.message.c_str());
      continue;
    }
    ++done;
    std::printf("%-16s %-10s %12.4f %12.1f %10.2f %9.2fs %8ld\n",
                r.name.c_str(), core::to_string(r.status),
                metaheur::sp_cost(r.result.instance, r.result.rects),
                r.result.eval.hpwl, r.result.eval.reward, r.runtime_s,
                r.result.quanta);
  }
  if (args.has("report-json")) {
    const std::string path = args.get("report-json", "batch.json");
    write_file(path,
               core::batch_report_json(reports, seed,
                                       cfg.search.budget.wall_clock_s,
                                       num::num_threads()));
    std::printf("wrote %s\n", path.c_str());
  }
  // 0: every job done; 1: nothing succeeded; 3: partial failure (some jobs
  // done, some failed/skipped) — distinct from 2, which stays usage-only.
  if (done == reports.size()) return 0;
  return done == 0 ? 1 : 3;
}

/// The fully validated search configuration shared by the floorplan,
/// ingest and scenario paths: pipeline config, resolved optimizer options
/// and the base seed.
struct SearchSetup {
  core::PipelineConfig cfg;
  std::string baseline;
  metaheur::Options resolved;
  std::uint64_t seed = 1;
};

SearchSetup build_search(const Args& args) {
  const std::string name = baseline_name(args);

  core::PipelineConfig cfg;
  cfg.constrained = args.has("constrained");
  cfg.optimizer = name;
  cfg.options = gather_options(args, name);
  cfg.search.restarts =
      static_cast<int>(parse_int_or_die(args, "restarts", 1, 1));
  if (args.has("iters")) {
    cfg.search.budget.iterations =
        static_cast<int>(parse_int_or_die(args, "iters", 0, 1));
  }
  if (args.has("time-budget")) {
    if (args.has("restarts")) {
      throw UsageError(
          "--restarts and --time-budget are mutually exclusive: the "
          "time-budgeted mode races iteration quanta instead of a fixed "
          "fan-out");
    }
    const double budget = parse_double_or_die(args, "time-budget", 0.0);
    if (budget <= 0.0) {
      throw UsageError("option '--time-budget' must be > 0 seconds");
    }
    cfg.search.budget.wall_clock_s = budget;
  }
  if (args.has("quanta")) {
    if (args.has("restarts")) {
      throw UsageError(
          "--restarts and --quanta are mutually exclusive: the fixed-quanta "
          "mode runs sequential iteration quanta instead of a fan-out");
    }
    cfg.search.budget.quanta =
        static_cast<int>(parse_int_or_die(args, "quanta", 0, 1));
  }
  if (args.has("job-timeout")) {
    const double deadline = parse_double_or_die(args, "job-timeout", 0.0);
    if (deadline <= 0.0) {
      throw UsageError("option '--job-timeout' must be > 0 seconds");
    }
    cfg.search.budget.deadline_s = deadline;
  }
  cfg.search.retry.max_retries =
      static_cast<int>(parse_int_or_die(args, "max-retries", 0, 0));
  if (args.has("checkpoint")) {
    if (cfg.search.budget.quanta <= 0 &&
        cfg.search.budget.wall_clock_s <= 0.0) {
      throw UsageError(
          "--checkpoint requires a quantum-granular search "
          "(--quanta or --time-budget)");
    }
    cfg.search.checkpoint_path = args.get("checkpoint", "");
    if (cfg.search.checkpoint_path.empty()) {
      throw UsageError("option '--checkpoint' expects a file path");
    }
  }
  if (args.has("resume")) {
    if (cfg.search.checkpoint_path.empty()) {
      throw UsageError("--resume requires --checkpoint <file>");
    }
    cfg.search.resume = true;
  }
  // Validate the optimizer + option map up front: a bad --opt key/value is
  // a usage error (exit 2), not a runtime failure.
  SearchSetup setup;
  try {
    setup.resolved = metaheur::make_optimizer(name, cfg.options)->options();
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
  setup.cfg = std::move(cfg);
  setup.baseline = name;
  setup.seed = parse_u64_or_die(args, "seed", 1);
  return setup;
}

/// Runs one circuit through the fault-tolerant job path (watchdog,
/// exception firewall, retry/backoff) and honors --svg/--report/
/// --report-json.  Attempt 0 seeds mt19937_64(seed) exactly as the
/// historic direct pipe.run() call did, so existing goldens stay bitwise
/// identical.
int run_single(const Args& args, const SearchSetup& setup,
               const std::string& name, netlist::Netlist nl) {
  core::JobSpec spec;
  spec.name = name;
  spec.netlist = std::move(nl);
  spec.config = setup.cfg;
  const core::JobReport job =
      core::JobService::run_job(spec, 0, setup.seed, nullptr, nullptr);
  if (job.status != core::JobStatus::kDone) {
    // Out-of-range option values were already rejected as usage errors by
    // the make_optimizer validation above, so any terminal failure here is
    // a genuine runtime failure: exit 1 with the classified error.
    std::fprintf(stderr, "error: job %s after %d attempt%s [%s] %s\n",
                 core::to_string(job.status), job.attempts,
                 job.attempts == 1 ? "" : "s",
                 core::to_string(job.error.kind), job.error.message.c_str());
    return 1;
  }
  if (job.attempts > 1) {
    std::printf("search: succeeded on attempt %d\n", job.attempts);
  }
  const core::PipelineResult& res = job.result;
  print_result(res);
  if (args.has("svg")) {
    layoutgen::write_svg(args.get("svg", "layout.svg"), res.layout);
    std::printf("wrote %s\n", args.get("svg", "layout.svg").c_str());
  }
  if (args.has("report")) {
    // The text report names the user-facing baseline spelling, which keeps
    // historic reports (e.g. the e2e determinism goldens) byte-compatible.
    const std::string spelled = args.has("baseline")
                                    ? args.get("baseline", "sa")
                                    : args.get("method", "sa");
    write_report(args.get("report", "report.txt"), spelled, res);
    std::printf("wrote %s\n", args.get("report", "report.txt").c_str());
  }
  if (args.has("report-json")) {
    const std::string path = args.get("report-json", "report.json");
    write_file(path, core::report_json(res, name, setup.baseline,
                                       setup.resolved, setup.cfg.search,
                                       setup.seed));
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

/// --scenario-matrix FAMS:SIZES:NSEEDS[:key=val...] — the cross product of
/// generated workloads as one deterministic job batch.
int cmd_scenario_matrix(const Args& args, const SearchSetup& setup) {
  const std::string text = args.get("scenario-matrix", "");
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t at = text.find(':', start);
    parts.push_back(text.substr(start, at - start));
    if (at == std::string::npos) break;
    start = at + 1;
  }
  if (parts.size() < 3) {
    throw UsageError(
        "option '--scenario-matrix' expects FAMS:SIZES:NSEEDS[:key=val...], "
        "got '" + text + "'");
  }
  auto split_commas = [](const std::string& s) {
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) out.push_back(tok);
    return out;
  };
  std::string suffix;
  for (std::size_t i = 3; i < parts.size(); ++i) suffix += ":" + parts[i];
  long long nseeds = 0;
  if (!metaheur::parse_strict_int(parts[2], &nseeds) || nseeds < 1) {
    throw UsageError("option '--scenario-matrix' NSEEDS must be a positive "
                     "integer, got '" + parts[2] + "'");
  }

  // Family-major, then size, then seed: the instance list (and with it the
  // per-job search seeds) is a pure function of the matrix spec.
  std::vector<core::JobSpec> jobs;
  for (const auto& fam : split_commas(parts[0])) {
    for (const auto& size : split_commas(parts[1])) {
      for (long long s = 1; s <= nseeds; ++s) {
        ingest::ScenarioSpec spec;
        try {
          spec = ingest::ScenarioSpec::parse(fam + ":" + size + ":" +
                                             std::to_string(s) + suffix);
        } catch (const std::invalid_argument& e) {
          throw UsageError(e.what());
        }
        auto sc = ingest::make_scenario(spec);
        core::JobSpec job;
        job.name = spec.to_string();
        job.netlist = std::move(sc.netlist);
        job.config = setup.cfg;
        job.config.scenario_constraints = std::move(sc.constraints);
        if (!setup.cfg.search.checkpoint_path.empty()) {
          job.config.search.checkpoint_path =
              setup.cfg.search.checkpoint_path + ".job" +
              std::to_string(jobs.size());
        }
        jobs.push_back(std::move(job));
      }
    }
  }

  std::printf("scenario matrix: %zu instances | optimizer %s | %d threads | "
              "seed %llu\n",
              jobs.size(), setup.baseline.c_str(), num::num_threads(),
              static_cast<unsigned long long>(setup.seed));
  std::vector<core::JobReport> reports(jobs.size());
  num::parallel_for(
      static_cast<std::int64_t>(jobs.size()), 1,
      [&](std::int64_t b0, std::int64_t b1) {
        for (std::int64_t b = b0; b < b1; ++b) {
          const auto j = static_cast<std::size_t>(b);
          reports[j] = core::JobService::run_job(
              jobs[j], j, core::JobService::job_seed(setup.seed, j), nullptr,
              nullptr);
        }
      });

  std::printf("\n%-24s %-10s %12s %12s %11s %8s\n", "instance", "status",
              "cost", "HPWL(um)", "constraints", "blocks");
  std::size_t done = 0, satisfied = 0, constrained = 0;
  for (const auto& r : reports) {
    if (r.status != core::JobStatus::kDone) {
      std::printf("%-24s %-10s %12s %12s %11s %8s  [%s] %s\n",
                  r.name.c_str(), core::to_string(r.status), "-", "-", "-",
                  "-", core::to_string(r.error.kind),
                  r.error.message.c_str());
      continue;
    }
    ++done;
    const bool has_constraints = !r.result.instance.constraints.empty();
    if (has_constraints) {
      ++constrained;
      if (r.result.eval.constraints_ok) ++satisfied;
    }
    // Constrained instances show the violated/total item breakdown, so a
    // near-miss reads differently from an unconstrained run.
    char cons[24];
    if (!has_constraints) {
      std::snprintf(cons, sizeof cons, "none");
    } else if (r.result.eval.constraints_ok) {
      std::snprintf(cons, sizeof cons, "ok");
    } else {
      std::snprintf(cons, sizeof cons, "%d/%d",
                    r.result.eval.constraint_violations,
                    r.result.eval.constraint_items);
    }
    std::printf("%-24s %-10s %12.4f %12.1f %11s %8zu\n", r.name.c_str(),
                core::to_string(r.status),
                metaheur::sp_cost(r.result.instance, r.result.rects),
                r.result.eval.hpwl, cons, r.result.rects.size());
  }
  std::printf("\nmatrix: %zu/%zu done | constraints satisfied %zu/%zu\n",
              done, reports.size(), satisfied, constrained);
  if (args.has("report-json")) {
    const std::string path = args.get("report-json", "matrix.json");
    write_file(path, core::batch_report_json(
                         reports, setup.seed,
                         setup.cfg.search.budget.wall_clock_s,
                         num::num_threads()));
    std::printf("wrote %s\n", path.c_str());
  }
  if (done == reports.size()) return 0;
  return done == 0 ? 1 : 3;
}

int cmd_floorplan(const Args& args) {
  const bool batch = args.has("batch");
  const bool scenario = args.has("scenario");
  const bool matrix = args.has("scenario-matrix");
  const int sources = static_cast<int>(!args.positional.empty()) +
                      static_cast<int>(batch) + static_cast<int>(scenario) +
                      static_cast<int>(matrix);
  if (sources == 0) {
    std::fprintf(stderr, "usage: afp floorplan <circuit> [--baseline sa]\n");
    return 2;
  }
  if (sources > 1) {
    throw UsageError("<circuit>, --batch, --scenario and --scenario-matrix "
                     "are mutually exclusive workload sources");
  }
  if ((batch || matrix) && (args.has("svg") || args.has("report"))) {
    throw UsageError(
        "--svg/--report apply to single-circuit runs; batches emit "
        "--report-json");
  }
  const SearchSetup setup = build_search(args);
  if (batch) {
    return cmd_floorplan_batch(args, setup.cfg, setup.baseline, setup.seed);
  }
  if (matrix) return cmd_scenario_matrix(args, setup);
  if (scenario) {
    ingest::ScenarioSpec spec;
    try {
      spec = ingest::ScenarioSpec::parse(args.get("scenario", ""));
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    auto sc = ingest::make_scenario(spec);
    SearchSetup with_overlay = setup;
    with_overlay.cfg.scenario_constraints = std::move(sc.constraints);
    return run_single(args, with_overlay, spec.to_string(),
                      std::move(sc.netlist));
  }
  return run_single(args, setup, args.positional[0],
                    load_circuit(args.positional[0]));
}

/// `afp ingest <deck.sp>`: SPICE-deck front end.  Parse + elaborate, then
/// either stop (--parse-only) or run the full pipeline like floorplan.
int cmd_ingest(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp ingest <deck.sp> [--top CELL] "
                         "[--parse-only]\n");
    return 2;
  }
  ingest::ParseOptions popts;
  popts.top = args.get("top", "");
  netlist::Netlist nl = ingest::parse_file(args.positional[0], popts);
  if (args.has("parse-only")) {
    std::printf("deck: %s\n", args.positional[0].c_str());
    std::printf("top: %s\n", nl.name().c_str());
    std::printf("devices: %d\n", nl.num_devices());
    std::printf("nets: %zu\n", nl.nets().size());
    return 0;
  }
  return run_single(args, build_search(args), nl.name(), std::move(nl));
}

int cmd_train(const Args& args) {
  core::TrainOptions opt = core::TrainOptions::fast(
      static_cast<unsigned>(parse_u64_or_die(args, "seed", 1)));
  opt.num_threads = static_cast<int>(parse_int_or_die(args, "threads", 0, 0));
  opt.hcl.circuits = {"ota_small", "bias_small", "ota1", "ota2", "bias1"};
  opt.hcl.episodes_per_circuit =
      static_cast<int>(parse_int_or_die(args, "episodes", 64, 1));
  opt.ppo.n_envs = 4;
  opt.ppo.n_steps = 32;
  opt.ppo.minibatch = 64;
  opt.ppo.lr = 1e-3f;
  std::printf("training: %zu circuits x %d episodes...\n",
              opt.hcl.circuits.size(), opt.hcl.episodes_per_circuit);
  const auto agent = core::train_agent(opt);
  std::printf("done: %zu PPO iterations, final mean episode reward %.2f\n",
              agent.rl_history.size(),
              agent.rl_history.empty()
                  ? 0.0
                  : agent.rl_history.back().mean_episode_reward);
  const std::string prefix = args.get("out", "afp_agent");
  nn::save_module(*agent.policy, prefix + "_policy.bin");
  nn::save_module(*agent.encoder, prefix + "_encoder.bin");
  std::printf("wrote %s_policy.bin and %s_encoder.bin\n", prefix.c_str(),
              prefix.c_str());
  return 0;
}

int cmd_eval(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp eval <circuit> --agent prefix\n");
    return 2;
  }
  const std::string prefix = args.get("agent", "afp_agent");
  // Validate every numeric option before any heavy work or file I/O.
  const std::uint64_t seed = parse_u64_or_die(args, "seed", 1);
  const int attempts = static_cast<int>(parse_int_or_die(args, "attempts", 8, 1));
  std::mt19937_64 rng(seed);
  rgcn::RewardModel encoder(rng);
  rl::ActorCritic policy(rl::PolicyConfig::fast(), rng);
  nn::load_module(encoder, prefix + "_encoder.bin");
  nn::load_module(policy, prefix + "_policy.bin");

  const auto nl = load_circuit(args.positional[0]);
  core::PipelineConfig cfg;
  cfg.constrained = args.has("constrained");
  cfg.rl_attempts = attempts;
  core::FloorplanPipeline pipe(cfg);
  const auto res = pipe.run(nl, policy, encoder, rng);
  print_result(res);
  if (args.has("svg")) {
    layoutgen::write_svg(args.get("svg", "layout.svg"), res.layout);
    std::printf("wrote %s\n", args.get("svg", "layout.svg").c_str());
  }
  return 0;
}

int cmd_graph(const Args& args) {
  if (args.positional.empty()) {
    std::fprintf(stderr, "usage: afp graph <circuit> [--dot out.dot]\n");
    return 2;
  }
  const auto nl = load_circuit(args.positional[0]);
  auto g = graphir::build_graph(nl, structrec::recognize(nl));
  graphir::apply_constraints(g, graphir::default_constraints(g));
  std::printf("graph '%s': %d nodes\n", g.name.c_str(), g.num_nodes());
  static const char* kRel[] = {"connectivity", "h-align", "v-align", "h-sym",
                               "v-sym"};
  for (int r = 0; r < graphir::kNumRelations; ++r) {
    std::printf("  %-12s %zu edges\n", kRel[r],
                g.edges[static_cast<std::size_t>(r)].size());
  }
  if (args.has("dot")) {
    std::ofstream os(args.get("dot", "graph.dot"));
    os << "graph g {\n";
    for (int i = 0; i < g.num_nodes(); ++i) {
      os << "  n" << i << " [label=\""
         << g.nodes[static_cast<std::size_t>(i)].name << "\"];\n";
    }
    for (int r = 0; r < graphir::kNumRelations; ++r) {
      for (const auto& [u, v] : g.edges[static_cast<std::size_t>(r)]) {
        os << "  n" << u << " -- n" << v << ";\n";
      }
    }
    os << "}\n";
    std::printf("wrote %s\n", args.get("dot", "graph.dot").c_str());
  }
  return 0;
}

/// Exit path for every command: flush stdout and turn a write failure
/// (EPIPE from `afp ... | head -1`, a full disk, ...) into a clean nonzero
/// exit with a stderr note instead of a SIGPIPE kill or silent truncation.
int finish(int rc) {
  if (std::fflush(stdout) != 0 || std::ferror(stdout)) {
    std::fprintf(stderr, "error: writing to stdout failed: %s\n",
                 std::strerror(errno));
    return rc == 0 ? 1 : rc;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // A closed downstream pipe must surface as an EPIPE write error (caught
  // in finish()), not kill the process with SIGPIPE — report files named by
  // --report/--report-json are still written either way.
  std::signal(SIGPIPE, SIG_IGN);
  if (argc < 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  const Args args = Args::parse(argc, argv, 2);
  if (args.has("help") || args.has("h")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!kCommandOptions.count(cmd)) {
    std::fprintf(stderr, "error: unknown command '%s'\n\n", cmd.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (const std::string unknown = args.first_unknown(cmd); !unknown.empty()) {
    std::fprintf(stderr, "error: unknown option '--%s' for '%s'\n\n",
                 unknown.c_str(), cmd.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  try {
    // Global knobs, honored by every command: pool size and kernel tier.
    if (args.has("threads")) {
      num::set_num_threads(
          static_cast<int>(parse_int_or_die(args, "threads", 0, 0)));
    }
    if (args.has("tier")) {
      num::KernelTier tier;
      if (!num::parse_kernel_tier(args.get("tier", "auto").c_str(), &tier)) {
        std::fprintf(stderr, "unknown kernel tier '%s'\n",
                     args.get("tier", "").c_str());
        return 2;
      }
      num::set_kernel_tier(tier);
    }
    if (cmd == "list") return finish(cmd_list());
    if (cmd == "list-baselines") return finish(cmd_list_baselines());
    if (cmd == "floorplan") return finish(cmd_floorplan(args));
    if (cmd == "ingest") return finish(cmd_ingest(args));
    if (cmd == "train") return finish(cmd_train(args));
    if (cmd == "eval") return finish(cmd_eval(args));
    if (cmd == "graph") return finish(cmd_graph(args));
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    std::fputs(kUsage, stderr);
    return 2;
  } catch (const ingest::ParseError& e) {
    // A malformed deck is an input problem like a bad flag: a structured
    // file:line diagnostic and exit 2, never a crash (no usage dump — the
    // flags were fine).
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // Unreachable: cmd was validated against kCommandOptions above and every
  // listed command is dispatched in the try block.
  return 2;
}
