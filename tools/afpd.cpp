// afpd — the floorplanning daemon: serves the afp pipeline over a
// Unix-domain socket (or loopback TCP) speaking the length-prefixed JSON
// protocol in src/service/protocol.hpp.
//
//   afpd --socket /tmp/afpd.sock [options]
//   afpd --port 0                [options]   (loopback TCP; 0 = pick free)
//
// options:
//   --max-sessions N   concurrent client sessions     (env AFPD_MAX_SESSIONS)
//   --max-inflight N   jobs running at once           (env AFPD_MAX_INFLIGHT)
//   --session-quota N  outstanding jobs per session   (env AFPD_SESSION_QUOTA)
//   --max-parked N     total wait-queue capacity      (env AFPD_MAX_PARKED)
//   --strike-limit N   malformed requests before ejection, 0 = off
//                                                     (env AFPD_STRIKE_LIMIT)
//   --write-deadline S stalled-writer disconnect, 0 = off
//                                                     (env AFPD_WRITE_DEADLINE)
//   --idle-timeout S   idle/half-open session reap, 0 = off; keepalive probe
//                      at S/2                         (env AFPD_IDLE_TIMEOUT)
//   --queue-frames N   outbound queue bound per session (progress frames
//                      beyond it are dropped+counted) (env AFPD_QUEUE_FRAMES)
//   --journal PATH     crash-recovery journal          (env AFPD_JOURNAL)
//   --base-seed N      seed base for seed-less submits (default 1)
//   --drain-grace S    drain: finish window before cancelling (default 5)
//   --threads N        numeric thread-pool size
//   --quiet            suppress per-event stderr lines
//
// A malformed AFPD_* value (non-numeric, out of range) is a configuration
// error: afpd exits 2 with a usage message naming the variable — silently
// running with a default the operator did not ask for hides typos until
// the daemon misbehaves under load.
//
// SIGTERM/SIGINT trigger a graceful drain: new sessions and submits are
// rejected, in-flight and queued jobs finish (or are cancelled after the
// grace window), every accepted job still gets its terminal result frame,
// then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "numeric/parallel.hpp"
#include "service/server.hpp"

namespace {

afp::service::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

int usage(int rc) {
  std::fprintf(rc == 0 ? stdout : stderr,
               "usage: afpd (--socket PATH | --port N) [--max-sessions N] "
               "[--max-inflight N]\n"
               "            [--session-quota N] [--max-parked N] "
               "[--strike-limit N]\n"
               "            [--write-deadline S] [--idle-timeout S] "
               "[--queue-frames N]\n"
               "            [--journal PATH] [--base-seed N] "
               "[--drain-grace S] [--threads N]\n"
               "            [--quiet]\n");
  return rc;
}

/// Strict env integer in [lo, hi]: a malformed or out-of-range value exits
/// 2 with a usage line naming the variable (never a silent default).
int env_int(const char* name, int dflt, long lo, long hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const long x = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || x < lo || x > hi) {
    std::fprintf(stderr,
                 "afpd: %s='%s' is not an integer in [%ld, %ld]\n", name, v,
                 lo, hi);
    std::exit(usage(2));
  }
  return static_cast<int>(x);
}

/// Strict env seconds in [0, 1e9]; same exit-2 contract as env_int.
double env_seconds(const char* name, double dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  char* end = nullptr;
  const double x = std::strtod(v, &end);
  if (end == v || *end != '\0' || !(x >= 0.0) || x > 1e9) {
    std::fprintf(stderr, "afpd: %s='%s' is not a number in [0, 1e9]\n", name,
                 v);
    std::exit(usage(2));
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  // Client disconnects must surface as EPIPE on the write path (handled,
  // session torn down), never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  afp::service::ServerConfig cfg;
  cfg.log = true;
  cfg.admission.max_sessions = env_int("AFPD_MAX_SESSIONS", 16, 1, 1 << 20);
  cfg.admission.max_inflight = env_int("AFPD_MAX_INFLIGHT", 2, 1, 1 << 20);
  cfg.admission.per_session = env_int("AFPD_SESSION_QUOTA", 8, 1, 1 << 20);
  cfg.admission.max_parked = env_int("AFPD_MAX_PARKED", 256, 1, 1 << 20);
  cfg.admission.strike_limit = env_int("AFPD_STRIKE_LIMIT", 16, 0, 1 << 20);
  cfg.write_deadline_s = env_seconds("AFPD_WRITE_DEADLINE", 10.0);
  cfg.idle_timeout_s = env_seconds("AFPD_IDLE_TIMEOUT", 300.0);
  cfg.queue_frames = static_cast<std::size_t>(
      env_int("AFPD_QUEUE_FRAMES", 256, 1, 1 << 20));
  if (const char* j = std::getenv("AFPD_JOURNAL")) cfg.journal_path = j;
  int threads = 0;

  auto int_arg = [&](int& i, const char* what) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "afpd: %s expects a value\n", what);
      std::exit(usage(2));
    }
    char* end = nullptr;
    const long x = std::strtol(argv[++i], &end, 10);
    if (end == argv[i] || *end != '\0') {
      std::fprintf(stderr, "afpd: %s expects an integer, got '%s'\n", what,
                   argv[i]);
      std::exit(usage(2));
    }
    return x;
  };
  auto seconds_arg = [&](int& i, const char* what) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "afpd: %s expects a value\n", what);
      std::exit(usage(2));
    }
    char* end = nullptr;
    const double x = std::strtod(argv[++i], &end);
    if (end == argv[i] || *end != '\0' || !(x >= 0.0) || x > 1e9) {
      std::fprintf(stderr, "afpd: %s expects seconds in [0, 1e9], got '%s'\n",
                   what, argv[i]);
      std::exit(usage(2));
    }
    return x;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--socket") {
      if (i + 1 >= argc) return usage(2);
      cfg.unix_path = argv[++i];
    } else if (arg == "--port") {
      cfg.tcp_port = static_cast<int>(int_arg(i, "--port"));
    } else if (arg == "--max-sessions") {
      cfg.admission.max_sessions = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--max-inflight") {
      cfg.admission.max_inflight = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--session-quota") {
      cfg.admission.per_session = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--max-parked") {
      cfg.admission.max_parked = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--strike-limit") {
      cfg.admission.strike_limit = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--write-deadline") {
      cfg.write_deadline_s = seconds_arg(i, arg.c_str());
    } else if (arg == "--idle-timeout") {
      cfg.idle_timeout_s = seconds_arg(i, arg.c_str());
    } else if (arg == "--queue-frames") {
      const long q = int_arg(i, arg.c_str());
      if (q < 1) {
        std::fprintf(stderr, "afpd: --queue-frames must be >= 1\n");
        return usage(2);
      }
      cfg.queue_frames = static_cast<std::size_t>(q);
    } else if (arg == "--journal") {
      if (i + 1 >= argc) return usage(2);
      cfg.journal_path = argv[++i];
    } else if (arg == "--base-seed") {
      cfg.base_seed = static_cast<std::uint64_t>(int_arg(i, arg.c_str()));
    } else if (arg == "--drain-grace") {
      if (i + 1 >= argc) return usage(2);
      cfg.drain_grace_s = std::atof(argv[++i]);
    } else if (arg == "--threads") {
      threads = static_cast<int>(int_arg(i, arg.c_str()));
    } else if (arg == "--quiet") {
      cfg.log = false;
    } else {
      std::fprintf(stderr, "afpd: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  if (cfg.unix_path.empty() && cfg.tcp_port < 0) return usage(2);
  if (cfg.admission.max_sessions < 1 || cfg.admission.max_inflight < 1 ||
      cfg.admission.per_session < 1 || cfg.admission.max_parked < 1) {
    std::fprintf(stderr, "afpd: admission limits must be >= 1\n");
    return usage(2);
  }
  if (cfg.admission.strike_limit < 0) {
    std::fprintf(stderr, "afpd: --strike-limit must be >= 0\n");
    return usage(2);
  }
  if (threads > 0) afp::num::set_num_threads(threads);

  try {
    afp::service::Server server(std::move(cfg));
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    for (const auto& orphan : server.orphans()) {
      std::fprintf(stderr,
                   "afpd: orphaned job %llu ('%s') recovered from journal\n",
                   static_cast<unsigned long long>(orphan.job),
                   orphan.name.c_str());
    }
    // One parseable ready line on stdout, for launchers that wait for it.
    if (server.port() > 0) {
      std::printf("afpd: ready port=%d\n", server.port());
    } else {
      std::printf("afpd: ready\n");
    }
    std::fflush(stdout);
    server.serve();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "afpd: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
